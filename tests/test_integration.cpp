// Cross-module integration tests: the flows a downstream user actually
// runs, exercised end to end — train/serialize/reload, full-physics radar
// frames through the learned pipeline, and the tracker on streamed
// estimates.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.h"
#include "core/tracking.h"
#include "human/surface.h"
#include "nn/registry.h"
#include "radar/processing.h"
#include "radar/simulator.h"
#include "util/rng.h"

namespace {

fuse::core::FusePipeline& trained_pipeline() {
  static fuse::core::FusePipeline* pipeline = [] {
    fuse::core::PipelineConfig cfg;
    cfg.data.frames_per_sequence = 30;
    cfg.fusion_m = 1;
    cfg.train.epochs = 4;
    auto* p = new fuse::core::FusePipeline(cfg);
    p->prepare_data();
    p->train_baseline();
    return p;
  }();
  return *pipeline;
}

TEST(Integration, TrainedModelSerializationRoundTrip) {
  auto& pipeline = trained_pipeline();
  const std::string path = "/tmp/fuse_integration_model.bin";
  pipeline.model().save_file(path);

  fuse::nn::ModelConfig mcfg;
  mcfg.in_channels = fuse::data::kChannelsPerFrame;
  mcfg.seed = 1;
  const auto reloaded = fuse::nn::build_model("mars_cnn", mcfg);
  reloaded->load_file(path);

  // Identical predictions on a real batch.
  const fuse::data::IndexSet batch = {0, 10, 20};
  const auto x = pipeline.featurizer().make_inputs(pipeline.fused(), batch);
  const auto y1 = pipeline.model().predict(x);
  const auto y2 = reloaded->predict(x);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);
  std::remove(path.c_str());
}

TEST(Integration, FullPhysicsFrameThroughLearnedPipeline) {
  // Generate a frame with the *full* IF-signal simulator (not the fast
  // model the pipeline was trained on) and estimate a pose from it: the
  // calibration contract says the two radar models are interchangeable.
  auto& pipeline = trained_pipeline();
  auto cfg = fuse::radar::default_iwr1443_config();
  cfg.samples_per_chirp = 128;
  cfg.chirps_per_frame = 32;

  const auto subject = fuse::human::make_subject(1);
  fuse::human::MovementGenerator gen(subject, fuse::human::Movement::kSquat,
                                     fuse::util::Rng(11));
  const double t = 0.3 * subject.style.period_s;
  const auto pose_gt = gen.pose_at(t);
  const auto pose_next = gen.pose_at(t + 0.02);
  fuse::human::SurfaceSamplerConfig scfg;
  scfg.radar_position = {0.0f, 0.0f, static_cast<float>(cfg.radar_height_m)};
  fuse::util::Rng rng(12);
  const auto scene = fuse::human::sample_body_surface(
      pose_gt, pose_next, 0.02f, subject.body, scfg, rng);

  const auto cube = fuse::radar::simulate_frame(cfg, scene, rng);
  const auto frame = fuse::radar::Processor(cfg).process(cube);
  ASSERT_FALSE(frame.cloud.empty());

  const auto pose = pipeline.predict_window({frame.cloud});
  // The estimate must land on the subject, not somewhere wild.
  EXPECT_NEAR(pose[fuse::human::Joint::kSpineBase].y,
              pose_gt[fuse::human::Joint::kSpineBase].y, 0.8f);
  EXPECT_GT(pose[fuse::human::Joint::kHead].z,
            pose[fuse::human::Joint::kSpineBase].z);
}

TEST(Integration, TrackedStreamIsSmootherThanRaw) {
  auto& pipeline = trained_pipeline();
  fuse::core::PoseTracker tracker;

  // Stream one test sequence; compare frame-to-frame jitter of raw vs
  // tracked head positions.
  double raw_jitter = 0.0, tracked_jitter = 0.0;
  fuse::util::Vec3 prev_raw, prev_tracked;
  bool have_prev = false;
  std::size_t n = 0;
  for (std::size_t k = 0; k < 30; ++k) {
    const auto& f = pipeline.dataset().frames[k];
    const auto raw = pipeline.push_frame(f.cloud);
    const auto tracked = tracker.update(raw);
    const auto rh = raw[fuse::human::Joint::kHead];
    const auto th = tracked[fuse::human::Joint::kHead];
    if (have_prev) {
      raw_jitter += (rh - prev_raw).norm();
      tracked_jitter += (th - prev_tracked).norm();
      ++n;
    }
    prev_raw = rh;
    prev_tracked = th;
    have_prev = true;
  }
  ASSERT_GT(n, 0u);
  EXPECT_LT(tracked_jitter, raw_jitter);
}

TEST(Integration, MetaTrainingRunsOnPipelineData) {
  // Minimal meta-training pass through the facade's data products.
  auto& pipeline = trained_pipeline();
  fuse::nn::ModelConfig model_cfg;
  model_cfg.in_channels = fuse::data::kChannelsPerFrame;
  model_cfg.seed = 13;
  const auto model = fuse::nn::build_model("mars_cnn", model_cfg);
  fuse::core::MetaConfig mcfg;
  mcfg.iterations = 3;
  mcfg.tasks_per_iteration = 2;
  mcfg.support_size = 16;
  mcfg.query_size = 16;
  fuse::core::MetaTrainer meta(model.get(), mcfg);
  const auto hist = meta.run(pipeline.fused(), pipeline.featurizer(),
                             pipeline.split().train);
  EXPECT_EQ(hist.query_loss.size(), 3u);
  for (const float q : hist.query_loss) {
    EXPECT_GT(q, 0.0f);
    EXPECT_TRUE(std::isfinite(q));
  }
}

}  // namespace

// Quickstart: the minimal end-to-end FUSE flow.
//
//   1. synthesize a small MARS-like mmWave pose dataset
//   2. fuse 3 frames per sample (M = 1) and fit featurization
//   3. build a model by name through the nn::build_model registry
//      (PipelineConfig::model_name — "mars_cnn" is the paper's network;
//      try "mars_cnn_large" or "mars_mlp" for capacity/latency trade-offs)
//      and train it on the fused representation
//   4. evaluate joint-coordinate MAE and run streaming inference
//
// The pipeline only ever sees the abstract nn::Module interface, so every
// registered architecture runs this flow unchanged — frame fusion is pure
// pre-processing, exactly as the paper argues.
//
// Run:  ./quickstart [--scale=0.5] [--epochs=10] [--model=mars_cnn]

#include <cstdio>

#include "core/pipeline.h"
#include "util/cli.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  const fuse::util::Cli cli(argc, argv);
  const double scale = cli.paper() ? 1.0 : cli.scale();

  fuse::core::PipelineConfig cfg;
  cfg.data = fuse::data::BuilderConfig::scaled(0.4 * scale);
  cfg.fusion_m = 1;  // fuse 3 frames, the paper's sweet spot
  cfg.model_name = cli.get("model", "mars_cnn");
  cfg.train.epochs = static_cast<std::size_t>(cli.get_int("epochs", 10));
  cfg.train.verbose = true;

  std::printf("FUSE quickstart\n");
  fuse::util::Stopwatch total;

  fuse::core::FusePipeline pipeline(cfg);

  fuse::util::Stopwatch sw;
  pipeline.prepare_data();
  std::printf("dataset: %zu frames (%zu sequences), %.1f points/frame "
              "[%.2f s]\n",
              pipeline.dataset().size(), pipeline.dataset().sequences.size(),
              pipeline.dataset().mean_points_per_frame(), sw.seconds());
  std::printf("model:   %s, %zu parameters\n",
              pipeline.model().arch_name().c_str(),
              pipeline.model().num_params());

  sw.reset();
  const auto hist = pipeline.train_baseline();
  std::printf("trained %zu epochs [%.2f s]; final L1 loss %.4f\n",
              hist.train_loss.size(), sw.seconds(),
              hist.train_loss.empty() ? 0.0f : hist.train_loss.back());

  const auto mae = pipeline.evaluate_test();
  std::printf("test MAE: x %.1f cm, y %.1f cm, z %.1f cm  (avg %.1f cm)\n",
              mae.x, mae.y, mae.z, mae.average());

  // Streaming inference on a few frames straight from the dataset.
  std::printf("streaming inference on 5 frames:\n");
  for (std::size_t k = 0; k < 5 && k < pipeline.dataset().size(); ++k) {
    const auto& frame = pipeline.dataset().frames[k];
    const auto pose = pipeline.push_frame(frame.cloud);
    const auto err = pose.mean_abs_error(frame.label);
    std::printf("  frame %zu: %2zu points -> pose (head at %.2f, %.2f, "
                "%.2f m), MAE %.1f cm\n",
                k, frame.cloud.size(),
                pose[fuse::human::Joint::kHead].x,
                pose[fuse::human::Joint::kHead].y,
                pose[fuse::human::Joint::kHead].z,
                100.0f * (err.x + err.y + err.z) / 3.0f);
  }

  std::printf("total %.2f s\n", total.seconds());
  return 0;
}

#include "human/anthropometrics.h"

#include <stdexcept>

namespace fuse::human {

Anthropometrics make_anthropometrics(float height, float build) {
  if (height < 1.2f || height > 2.2f)
    throw std::invalid_argument("make_anthropometrics: implausible height");
  Anthropometrics a;
  a.height = height;
  // Drillis & Contini segment fractions of standing height.
  a.shoulder_half_w = 0.129f * height * build;
  a.hip_half_w = 0.055f * height * build;
  a.torso_len = 0.288f * height;
  a.neck_len = 0.052f * height;
  a.head_len = 0.070f * height;
  a.upper_arm = 0.186f * height;
  a.forearm = 0.146f * height;
  a.thigh = 0.245f * height;
  a.shank = 0.246f * height;
  a.foot_len = 0.152f * height;
  a.ankle_height = 0.039f * height;
  a.torso_radius = 0.075f * height * build;
  a.limb_radius = 0.028f * height * build;
  a.head_radius = 0.058f * height;
  return a;
}

Subject make_subject(std::size_t id) {
  if (id >= kNumSubjects)
    throw std::invalid_argument("make_subject: id out of range");
  Subject s;
  s.id = id;
  switch (id) {
    case 0:  // tall, average build, slow deliberate movements
      s.body = make_anthropometrics(1.84f, 1.00f);
      s.style = {0.95f, 3.8f, 0.8f, 2.25f, 0.05f};
      break;
    case 1:  // average height, broad build, energetic
      s.body = make_anthropometrics(1.75f, 1.12f);
      s.style = {1.10f, 2.6f, 1.1f, 2.10f, -0.08f};
      break;
    case 2:  // shorter, light build
      s.body = make_anthropometrics(1.62f, 0.90f);
      s.style = {1.00f, 3.1f, 1.3f, 2.35f, 0.00f};
      break;
    case 3:  // the held-out subject (leave-out split): deliberately outside
             // the others' envelope — short, broad, fast-moving, and much
             // closer to the radar.  Section 4.3.1 calls this split "the
             // worst-case scenario"; a genuine distribution shift is what
             // makes the adaptation experiment meaningful.
      s.body = make_anthropometrics(1.58f, 1.15f);
      s.style = {1.35f, 2.2f, 1.4f, 1.70f, 0.15f};
      break;
    default:
      break;
  }
  return s;
}

}  // namespace fuse::human

#include "human/surface.h"

#include <cmath>

namespace fuse::human {

using fuse::util::Vec3;
using fuse::util::kPi;

std::vector<BodyCapsule> build_capsules(const Pose& pose,
                                        const Pose& pose_next, float dt,
                                        const Anthropometrics& body) {
  auto vel = [&](Joint j) {
    return (pose_next[j] - pose[j]) / dt;
  };
  auto cap = [&](Joint j0, Joint j1, float r) {
    return BodyCapsule{pose[j0], pose[j1], vel(j0), vel(j1), r};
  };

  std::vector<BodyCapsule> caps;
  caps.reserve(14);
  // Torso: one wide capsule spine-base -> spine-shoulder plus the shoulder
  // and hip girdles.
  caps.push_back(cap(Joint::kSpineBase, Joint::kSpineShoulder,
                     body.torso_radius));
  caps.push_back(cap(Joint::kShoulderLeft, Joint::kShoulderRight,
                     0.6f * body.torso_radius));
  caps.push_back(cap(Joint::kHipLeft, Joint::kHipRight,
                     0.8f * body.torso_radius));
  // Head.
  caps.push_back(cap(Joint::kNeck, Joint::kHead, body.head_radius));
  // Arms.
  caps.push_back(cap(Joint::kShoulderLeft, Joint::kElbowLeft,
                     body.limb_radius));
  caps.push_back(cap(Joint::kElbowLeft, Joint::kWristLeft,
                     0.8f * body.limb_radius));
  caps.push_back(cap(Joint::kShoulderRight, Joint::kElbowRight,
                     body.limb_radius));
  caps.push_back(cap(Joint::kElbowRight, Joint::kWristRight,
                     0.8f * body.limb_radius));
  // Legs.
  caps.push_back(cap(Joint::kHipLeft, Joint::kKneeLeft,
                     1.4f * body.limb_radius));
  caps.push_back(cap(Joint::kKneeLeft, Joint::kAnkleLeft, body.limb_radius));
  caps.push_back(cap(Joint::kHipRight, Joint::kKneeRight,
                     1.4f * body.limb_radius));
  caps.push_back(cap(Joint::kKneeRight, Joint::kAnkleRight,
                     body.limb_radius));
  // Feet.
  caps.push_back(cap(Joint::kAnkleLeft, Joint::kFootLeft,
                     0.8f * body.limb_radius));
  caps.push_back(cap(Joint::kAnkleRight, Joint::kFootRight,
                     0.8f * body.limb_radius));
  return caps;
}

fuse::radar::Scene sample_body_surface(const Pose& pose,
                                       const Pose& pose_next, float dt,
                                       const Anthropometrics& body,
                                       const SurfaceSamplerConfig& cfg,
                                       fuse::util::Rng& rng) {
  const auto caps = build_capsules(pose, pose_next, dt, body);

  // Area-proportional allocation of the sample budget.
  std::vector<float> areas(caps.size());
  float total_area = 0.0f;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const float len = (caps[i].b - caps[i].a).norm();
    areas[i] = 2.0f * kPi * caps[i].radius * std::max(len, 0.02f);
    total_area += areas[i];
  }

  fuse::radar::Scene scene;
  scene.reserve(cfg.target_samples);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const BodyCapsule& c = caps[i];
    const Vec3 axis_raw = c.b - c.a;
    const float len = axis_raw.norm();
    if (len < 1e-5f) continue;
    const Vec3 axis = axis_raw / len;
    // Orthonormal frame around the axis.
    Vec3 ref = std::fabs(axis.z) < 0.9f ? Vec3{0.0f, 0.0f, 1.0f}
                                        : Vec3{1.0f, 0.0f, 0.0f};
    const Vec3 n1 = axis.cross(ref).normalized();
    const Vec3 n2 = axis.cross(n1);

    const auto n_samples = static_cast<std::size_t>(
        std::ceil(static_cast<double>(cfg.target_samples) * areas[i] /
                  total_area));
    // Half the surface faces away from the radar; sample double and reject.
    const float patch_area = areas[i] / static_cast<float>(
                                            std::max<std::size_t>(1,
                                                                  n_samples));
    for (std::size_t s = 0; s < 2 * n_samples; ++s) {
      const float t = rng.uniformf(0.0f, 1.0f);
      const float phi = rng.uniformf(0.0f, 2.0f * kPi);
      const Vec3 normal = n1 * std::cos(phi) + n2 * std::sin(phi);
      const Vec3 on_axis = c.a + axis_raw * t;
      const Vec3 world = on_axis + normal * c.radius;
      // Self-occlusion: keep only patches whose outward normal faces the
      // radar.
      const Vec3 to_radar = (cfg.radar_position - world).normalized();
      if (normal.dot(to_radar) < 0.15f) continue;

      fuse::radar::Scatterer sc;
      sc.position = world - cfg.radar_position;  // radar frame
      sc.velocity = fuse::util::lerp(c.va, c.vb, t);
      if (cfg.micro_motion_sigma > 0.0f) {
        sc.velocity += Vec3{
            cfg.micro_motion_sigma * static_cast<float>(rng.gauss()),
            cfg.micro_motion_sigma * static_cast<float>(rng.gauss()),
            cfg.micro_motion_sigma * static_cast<float>(rng.gauss())};
      }
      // Log-normal speckle around the mean patch RCS.
      const float mean_rcs = cfg.reflectivity * patch_area;
      const float speckle = std::exp(
          cfg.speckle_sigma * static_cast<float>(rng.gauss()) -
          0.5f * cfg.speckle_sigma * cfg.speckle_sigma);
      sc.rcs = mean_rcs * speckle;
      scene.push_back(sc);
      if (scene.size() >= 2 * cfg.target_samples) break;
    }
  }
  return scene;
}

}  // namespace fuse::human

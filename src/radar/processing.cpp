#include "radar/processing.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/window.h"
#include "util/thread_pool.h"

namespace fuse::radar {

namespace {
constexpr double kTau = 6.283185307179586476925286766559;

/// Stage 3 shared by every path: non-coherent |.|^2 sum across channels,
/// channel-major so the per-cell accumulation order (and therefore the
/// float rounding) is identical everywhere.  The inner loop runs over
/// contiguous memory with independent iterations, so it vectorizes.
void accumulate_power(const RangeDopplerCube& rd, std::vector<float>& p) {
  const std::size_t cells = rd.n_range() * rd.n_doppler();
  p.assign(cells, 0.0f);
  for (std::size_t v = 0; v < rd.n_virtual(); ++v) {
    const cfloat* base = rd.data() + v * cells;
    float* out = p.data();
    for (std::size_t i = 0; i < cells; ++i) {
      const float re = base[i].real();
      const float im = base[i].imag();
      out[i] += re * re + im * im;
    }
  }
}

}  // namespace

Processor::Processor(const RadarConfig& cfg)
    : cfg_(cfg),
      elems_(make_virtual_array(cfg)),
      n_range_(fuse::dsp::next_pow2(cfg.samples_per_chirp)),
      n_doppler_(fuse::dsp::next_pow2(cfg.chirps_per_frame)),
      range_plan_(n_range_),
      doppler_plan_(n_doppler_),
      angle_plan_(kAngleFftSize) {
  cfg_.validate();
  range_window_ =
      fuse::dsp::make_window(fuse::dsp::WindowType::kHann,
                             cfg_.samples_per_chirp);
  doppler_window_ =
      fuse::dsp::make_window(fuse::dsp::WindowType::kHamming,
                             cfg_.chirps_per_frame);
  cfar_.guard_cells = 2;
  cfar_.train_cells = 8;
  cfar_.threshold_scale =
      fuse::dsp::cfar_scale_for_pfa(2 * cfar_.train_cells, cfg_.cfar_pfa);
  // Doppler-axis CFAR with Doppler-axis local-max gating: extended bodies
  // occupy many contiguous range bins, so range-axis training would be
  // contaminated and suppress them (see Cfar2dMode docs).
  cfar_.mode_2d = fuse::dsp::Cfar2dMode::kDopplerAxis;
  cfar_.local_max_2d = fuse::dsp::CfarLocalMax::kDoppler;
}

// ---------------------------------------------------- planned frame path --

const RangeDopplerCube& Processor::range_doppler(const RadarCube& cube,
                                                 FrameWorkspace& ws) const {
  const std::size_t nv = cube.n_virtual();
  const std::size_t nc = cube.n_chirps();
  const std::size_t ns = cube.n_samples();
  // Guard against the WINDOW lengths, not the padded FFT sizes: with a
  // non-power-of-two samples_per_chirp, n_range_ exceeds the Hann window,
  // and a cube sized in between would read past the window vector.
  if (ns > range_window_.size() || nc > doppler_window_.size())
    throw std::invalid_argument(
        "Processor::range_doppler: cube larger than the configured frame");
  if (ws.rd_.resize(nv, n_range_, n_doppler_))
    ws.grows_.fetch_add(1, std::memory_order_relaxed);

  // Pre-spawn one sized lane per possible concurrent chunk (the global
  // pool's workers execute the chunks; an inline/serialized call needs
  // one) so lane creation and sizing happen deterministically here in the
  // serial section, never mid-flight in a chunk.
  std::size_t max_concurrency = 1;
  if (!fuse::util::ThreadPool::inside_pool_worker())
    max_concurrency =
        std::max<std::size_t>(1, fuse::util::global_pool().size());
  ws.prepare_lanes(std::min(max_concurrency, nv), nc * n_range_,
                   n_range_ * n_doppler_);

  fuse::util::parallel_for(0, nv, [&](std::size_t v0, std::size_t v1) {
    FrameWorkspace::Lane& lane = ws.acquire_lane();
    ws.ensure(lane.a_re, nc * n_range_);
    ws.ensure(lane.a_im, nc * n_range_);
    ws.ensure(lane.b_re, n_range_ * n_doppler_);
    ws.ensure(lane.b_im, n_range_ * n_doppler_);
    float* a_re = lane.a_re.data();
    float* a_im = lane.a_im.data();
    float* b_re = lane.b_re.data();
    float* b_im = lane.b_im.data();
    const float* dw = doppler_window_.data();
    const float inv_nc = 1.0f / static_cast<float>(nc);
    const std::size_t shift = (n_doppler_ + 1) / 2;  // fftshift offset

    for (std::size_t v = v0; v < v1; ++v) {
      // Range FFTs, batched across chirps through one plan: the Hann
      // window, zero padding and bit-reversal are fused into the load.
      for (std::size_t c = 0; c < nc; ++c)
        range_plan_.scatter_load(cube.chirp_ptr(v, c), ns,
                                 range_window_.data(), a_re + c * n_range_,
                                 a_im + c * n_range_);
      range_plan_.execute_loaded_many(a_re, a_im, nc);

      // Transpose into Doppler rows with optional static clutter removal
      // (subtract the chirp-mean so the DC bin vanishes) and the Hamming
      // window fused in; chirp padding up to n_doppler_ stays zero.
      for (std::size_t r = 0; r < n_range_; ++r) {
        float mr = 0.0f, mi = 0.0f;
        if (cfg_.static_clutter_removal) {
          for (std::size_t c = 0; c < nc; ++c) {
            mr += a_re[c * n_range_ + r];
            mi += a_im[c * n_range_ + r];
          }
          mr *= inv_nc;
          mi *= inv_nc;
        }
        float* row_re = b_re + r * n_doppler_;
        float* row_im = b_im + r * n_doppler_;
        for (std::size_t c = 0; c < nc; ++c) {
          row_re[c] = (a_re[c * n_range_ + r] - mr) * dw[c];
          row_im[c] = (a_im[c * n_range_ + r] - mi) * dw[c];
        }
        for (std::size_t c = nc; c < n_doppler_; ++c) {
          row_re[c] = 0.0f;
          row_im[c] = 0.0f;
        }
      }

      // Doppler FFTs, batched across range bins.
      doppler_plan_.execute_many(b_re, b_im, n_range_);

      // fftshift while interleaving back into the output cube.
      cfloat* out = ws.rd_.data() + v * n_range_ * n_doppler_;
      for (std::size_t r = 0; r < n_range_; ++r) {
        const float* row_re = b_re + r * n_doppler_;
        const float* row_im = b_im + r * n_doppler_;
        cfloat* out_row = out + r * n_doppler_;
        for (std::size_t d = 0; d < n_doppler_; ++d) {
          const std::size_t src = (d + shift) % n_doppler_;
          out_row[d] = cfloat(row_re[src], row_im[src]);
        }
      }
    }
    ws.release_lane(lane);
  });
  return ws.rd_;
}

void Processor::detect(const RangeDopplerCube& rd, FrameWorkspace& ws,
                       ProcessedFrame& out) const {
  out.n_range = rd.n_range();
  out.n_doppler = rd.n_doppler();
  accumulate_power(rd, out.power_map);
  const std::size_t dets_cap = ws.dets_.capacity();
  fuse::dsp::ca_cfar_2d(out.power_map, out.n_range, out.n_doppler, cfar_,
                        ws.cfar_, ws.dets_);
  if (ws.dets_.capacity() > dets_cap)
    ws.grows_.fetch_add(1, std::memory_order_relaxed);
  resolve_detections(rd, ws.dets_, &ws, out);
}

void Processor::process(const RadarCube& cube, FrameWorkspace& ws,
                        ProcessedFrame& out) const {
  range_doppler(cube, ws);
  detect(ws.rd_, ws, out);
}

// ------------------------------------------------------ compat interface --

RangeDopplerCube Processor::range_doppler(const RadarCube& cube) const {
  FrameWorkspace ws;
  range_doppler(cube, ws);
  return std::move(ws.rd_);
}

std::vector<float> Processor::power_map(const RangeDopplerCube& rd) const {
  std::vector<float> p;
  accumulate_power(rd, p);
  return p;
}

ProcessedFrame Processor::detect(const RangeDopplerCube& rd) const {
  FrameWorkspace ws;
  ProcessedFrame out;
  detect(rd, ws, out);
  return out;
}

ProcessedFrame Processor::process(const RadarCube& cube) const {
  FrameWorkspace ws;
  ProcessedFrame out;
  process(cube, ws, out);
  return out;
}

// ------------------------------------------------------- reference path --

RangeDopplerCube Processor::range_doppler_reference(
    const RadarCube& cube) const {
  const std::size_t nv = cube.n_virtual();
  const std::size_t nc = cube.n_chirps();
  const std::size_t ns = cube.n_samples();
  if (ns > range_window_.size() || nc > doppler_window_.size())
    throw std::invalid_argument(
        "Processor::range_doppler: cube larger than the configured frame");
  RangeDopplerCube rd(nv, n_range_, n_doppler_);

  fuse::util::parallel_for(0, nv, [&](std::size_t v0, std::size_t v1) {
    std::vector<cfloat> buf;
    for (std::size_t v = v0; v < v1; ++v) {
      // Range FFT per chirp; store range spectra transposed into the RD
      // cube so the Doppler pass reads contiguously per range bin.
      std::vector<std::vector<cfloat>> range_spectra(nc);
      for (std::size_t c = 0; c < nc; ++c) {
        buf.assign(cube.chirp_ptr(v, c), cube.chirp_ptr(v, c) + ns);
        for (std::size_t s = 0; s < ns; ++s) buf[s] *= range_window_[s];
        buf.resize(n_range_);
        fuse::dsp::fft_inplace(buf);
        range_spectra[c] = buf;
      }
      // Doppler FFT per range bin across chirps, with optional static
      // clutter removal (subtract the chirp-mean so the DC bin vanishes).
      std::vector<cfloat> dop(n_doppler_);
      for (std::size_t r = 0; r < n_range_; ++r) {
        cfloat mean{};
        if (cfg_.static_clutter_removal) {
          for (std::size_t c = 0; c < nc; ++c) mean += range_spectra[c][r];
          mean *= 1.0f / static_cast<float>(nc);
        }
        std::fill(dop.begin(), dop.end(), cfloat{});
        for (std::size_t c = 0; c < nc; ++c)
          dop[c] = (range_spectra[c][r] - mean) * doppler_window_[c];
        fuse::dsp::fft_inplace(dop);
        fuse::dsp::fftshift(dop);
        for (std::size_t d = 0; d < n_doppler_; ++d) rd.at(v, r, d) = dop[d];
      }
    }
  });
  return rd;
}

ProcessedFrame Processor::detect_reference(const RangeDopplerCube& rd) const {
  ProcessedFrame out;
  out.n_range = rd.n_range();
  out.n_doppler = rd.n_doppler();
  accumulate_power(rd, out.power_map);
  auto dets = fuse::dsp::ca_cfar_2d_reference(out.power_map, out.n_range,
                                              out.n_doppler, cfar_);
  resolve_detections(rd, dets, nullptr, out);
  return out;
}

ProcessedFrame Processor::process_reference(const RadarCube& cube) const {
  return detect_reference(range_doppler_reference(cube));
}

// -------------------------------------------------------- stages 4 to 6 --

void Processor::resolve_detections(const RangeDopplerCube& rd,
                                   std::vector<fuse::dsp::Detection2d>& dets,
                                   FrameWorkspace* ws,
                                   ProcessedFrame& out) const {
  // Strongest first; cap at the configured point budget.
  std::sort(dets.begin(), dets.end(),
            [](const auto& a, const auto& b) { return a.snr > b.snr; });
  if (dets.size() > cfg_.max_points) dets.resize(cfg_.max_points);

  out.detections.clear();
  out.cloud.points.clear();

  const double range_res =
      cfg_.max_range_m() / static_cast<double>(n_range_);
  const double v_res = cfg_.wavelength() /
                       (2.0 * static_cast<double>(n_doppler_) *
                        cfg_.doppler_chirp_period_s());

  for (const auto& det : dets) {
    RadarDetection rdet;
    rdet.range_bin = det.row;
    rdet.doppler_bin = det.col;

    // Sub-bin interpolation along range.
    float off_r = 0.0f;
    if (det.row > 0 && det.row + 1 < out.n_range) {
      off_r = fuse::dsp::parabolic_peak_offset(
          out.power_map[(det.row - 1) * out.n_doppler + det.col], det.power,
          out.power_map[(det.row + 1) * out.n_doppler + det.col]);
    }
    rdet.range_m =
        static_cast<float>((static_cast<double>(det.row) + off_r) * range_res);
    if (rdet.range_m < 1e-3f) continue;

    // Doppler bin -> signed velocity (bin n_doppler/2 == 0 after fftshift).
    const double k_dop = static_cast<double>(det.col) -
                         static_cast<double>(out.n_doppler) / 2.0;
    rdet.velocity_mps = static_cast<float>(k_dop * v_res);
    rdet.snr_db = 10.0f * std::log10(std::max(det.snr, 1e-6f));

    float second_ux = 2.0f;
    if (ws != nullptr) {
      estimate_angles(rd, det.row, det.col, rdet.velocity_mps, *ws,
                      &rdet.dir_cos_x, &rdet.dir_cos_z, &second_ux);
    } else {
      estimate_angles_reference(rd, det.row, det.col, rdet.velocity_mps,
                                &rdet.dir_cos_x, &rdet.dir_cos_z, &second_ux);
    }
    out.detections.push_back(rdet);

    // Cartesian reconstruction from direction cosines: u_y follows from
    // |u| = 1 (targets are in front of the array, u_y >= 0).
    auto emit_point = [&](float ux, float uz, float snr_db) {
      RadarPoint p;
      const float uy2 = 1.0f - ux * ux - uz * uz;
      const float uy = uy2 > 0.0f ? std::sqrt(uy2) : 0.0f;
      p.x = rdet.range_m * ux;
      p.y = rdet.range_m * uy;
      p.z = rdet.range_m * uz + static_cast<float>(cfg_.radar_height_m);
      p.doppler = rdet.velocity_mps;
      p.intensity = snr_db;
      out.cloud.points.push_back(p);
    };
    emit_point(rdet.dir_cos_x, rdet.dir_cos_z, rdet.snr_db);
    // Secondary azimuth peak in the same range-Doppler cell becomes its own
    // point (the firmware behaviour that makes body clouds denser).
    if (second_ux <= 1.0f)
      emit_point(second_ux, rdet.dir_cos_z, rdet.snr_db - 4.0f);
  }
}

namespace {

/// Shared tail of both angle estimators, reading the azimuth spectrum as
/// SoA power.  All arithmetic matches the pre-plan implementation exactly.
void azimuth_from_spectrum(const float* az_re, const float* az_im,
                           std::size_t fft_size, std::size_t n_az,
                           float* dir_cos_x, float* second_peak) {
  auto norm_at = [&](std::size_t k) -> float {
    return az_re[k] * az_re[k] + az_im[k] * az_im[k];
  };
  std::size_t best = 0;
  float best_pow = 0.0f;
  for (std::size_t k = 0; k < fft_size; ++k) {
    const float p = norm_at(k);
    if (p > best_pow) {
      best_pow = p;
      best = k;
    }
  }
  if (second_peak != nullptr) {
    // Strongest azimuth peak at least one beamwidth away from the main one
    // (beamwidth = fft_size / n_az FFT bins).
    const std::size_t min_sep = fft_size / n_az;
    std::size_t b2 = fft_size;
    float p2 = 0.0f;
    for (std::size_t k = 0; k < fft_size; ++k) {
      const std::size_t d1 = (k + fft_size - best) % fft_size;
      const std::size_t dist = std::min(d1, fft_size - d1);
      if (dist < min_sep) continue;
      const float p = norm_at(k);
      if (p > p2) {
        p2 = p;
        b2 = k;
      }
    }
    // Report only when it is a genuine secondary lobe-free peak: local max
    // and within 9 dB of the main peak.
    if (b2 < fft_size && p2 > 0.125f * best_pow) {
      double k2 = static_cast<double>(b2);
      if (k2 >= static_cast<double>(fft_size) / 2.0)
        k2 -= static_cast<double>(fft_size);
      *second_peak = static_cast<float>(std::clamp(
          2.0 * k2 / static_cast<double>(fft_size), -1.0, 1.0));
    } else {
      *second_peak = 2.0f;  // sentinel: no secondary peak
    }
  }
  // Signed spatial frequency bin -> sin(azimuth).  d_spacing = lambda/2 so
  // sin(az) = 2 k / N with k in [-N/2, N/2).
  const float pl = norm_at((best + fft_size - 1) % fft_size);
  const float pr = norm_at((best + 1) % fft_size);
  const float frac = fuse::dsp::parabolic_peak_offset(pl, best_pow, pr);
  double k_signed = static_cast<double>(best) + frac;
  if (k_signed >= static_cast<double>(fft_size) / 2.0)
    k_signed -= static_cast<double>(fft_size);
  // The FFT peak at signed bin k corresponds to direction cosine
  // u_x = 2 k / N for the lambda/2 ULA (phase model e^{+j pi v u_x}).
  double ux = 2.0 * k_signed / static_cast<double>(fft_size);
  ux = std::clamp(ux, -1.0, 1.0);
  *dir_cos_x = static_cast<float>(ux);
}

/// Elevation monopulse shared by both estimators.
float elevation_monopulse(const cfloat* snapshot, std::size_t n_az,
                          std::size_t n_rx) {
  std::complex<double> acc(0.0, 0.0);
  for (std::size_t i = 0; i < n_rx; ++i) {
    const cfloat lower = snapshot[i];           // azimuth element i
    const cfloat upper = snapshot[n_az + i];    // elevated element i
    acc += std::complex<double>(upper) *
           std::conj(std::complex<double>(lower));
  }
  // Upper row leads the lower row by pi * u_z (lambda/2 height offset).
  const double dphi = std::arg(acc);
  double uz = dphi / (kTau / 2.0);
  uz = std::clamp(uz, -1.0, 1.0);
  return static_cast<float>(uz);
}

}  // namespace

void Processor::estimate_angles(const RangeDopplerCube& rd, std::size_t r,
                                std::size_t d, float velocity,
                                FrameWorkspace& ws, float* dir_cos_x,
                                float* dir_cos_z, float* second_peak) const {
  const double lambda = cfg_.wavelength();
  const double f_doppler = 2.0 * static_cast<double>(velocity) / lambda;
  const double t_rep = cfg_.chirp_repeat_s();

  // TDM Doppler compensation: channel from TX slot k accumulated an extra
  // phase 2 pi f_d k T_rep; remove it before beamforming.
  const std::size_t n_az = cfg_.n_virtual_azimuth();
  ws.ensure(ws.snapshot_, elems_.size());
  cfloat* snapshot = ws.snapshot_.data();
  for (std::size_t v = 0; v < elems_.size(); ++v) {
    const double phi =
        kTau * f_doppler * static_cast<double>(elems_[v].tx_slot) * t_rep;
    const cfloat comp(static_cast<float>(std::cos(phi)),
                      static_cast<float>(-std::sin(phi)));
    snapshot[v] = rd.at(v, r, d) * comp;
  }

  // Azimuth: zero-padded FFT across the lambda/2 ULA, through the shared
  // angle plan and the workspace's SoA scratch.
  ws.ensure(ws.az_re_, kAngleFftSize);
  ws.ensure(ws.az_im_, kAngleFftSize);
  float* az_re = ws.az_re_.data();
  float* az_im = ws.az_im_.data();
  std::fill(az_re, az_re + kAngleFftSize, 0.0f);
  std::fill(az_im, az_im + kAngleFftSize, 0.0f);
  for (std::size_t v = 0; v < n_az; ++v) {
    az_re[v] = snapshot[v].real();
    az_im[v] = snapshot[v].imag();
  }
  angle_plan_.execute(az_re, az_im);

  azimuth_from_spectrum(az_re, az_im, kAngleFftSize, n_az, dir_cos_x,
                        second_peak);

  // Elevation: monopulse between the elevated row and the matching azimuth
  // elements (same x positions, slot-compensated above).  The lambda/2
  // height offset gives delta_phi = pi sin(el).
  *dir_cos_z = cfg_.has_elevation_tx
                   ? elevation_monopulse(snapshot, n_az, cfg_.n_rx)
                   : 0.0f;
}

void Processor::estimate_angles_reference(const RangeDopplerCube& rd,
                                          std::size_t r, std::size_t d,
                                          float velocity, float* dir_cos_x,
                                          float* dir_cos_z,
                                          float* second_peak) const {
  const double lambda = cfg_.wavelength();
  const double f_doppler = 2.0 * static_cast<double>(velocity) / lambda;
  const double t_rep = cfg_.chirp_repeat_s();

  const std::size_t n_az = cfg_.n_virtual_azimuth();
  std::vector<cfloat> snapshot(elems_.size());
  for (std::size_t v = 0; v < elems_.size(); ++v) {
    const double phi =
        kTau * f_doppler * static_cast<double>(elems_[v].tx_slot) * t_rep;
    const cfloat comp(static_cast<float>(std::cos(phi)),
                      static_cast<float>(-std::sin(phi)));
    snapshot[v] = rd.at(v, r, d) * comp;
  }

  // Azimuth: zero-padded FFT across the lambda/2 ULA (fresh buffer +
  // fft_inplace, as before the plan rewrite).
  std::vector<cfloat> az(kAngleFftSize, cfloat{});
  for (std::size_t v = 0; v < n_az; ++v) az[v] = snapshot[v];
  fuse::dsp::fft_inplace(az);
  std::vector<float> az_re(kAngleFftSize), az_im(kAngleFftSize);
  for (std::size_t k = 0; k < kAngleFftSize; ++k) {
    az_re[k] = az[k].real();
    az_im[k] = az[k].imag();
  }
  azimuth_from_spectrum(az_re.data(), az_im.data(), kAngleFftSize, n_az,
                        dir_cos_x, second_peak);

  *dir_cos_z = cfg_.has_elevation_tx
                   ? elevation_monopulse(snapshot.data(), n_az, cfg_.n_rx)
                   : 0.0f;
}

}  // namespace fuse::radar

#pragma once
// Meta-training for mmWave pose estimation — Algorithm 1 of the paper.
//
// Each meta-iteration samples a batch of tasks from D_train (Definition 2).
// For every task the inner loop adapts a clone of the model on the task's
// support set with plain SGD at the sample-level rate alpha (Eq. 5), then
// evaluates the L1 loss of the *adapted* clone on the task's query set; the
// initial parameters are updated once per meta-iteration from the summed
// query losses (Eq. 6).
//
// Gradient order: we use the first-order approximation (FOMAML) — the query
// gradient is taken at the adapted parameters and applied to the initial
// parameters, dropping the Hessian term of the full MAML objective.  This
// matches common practice (the MAML-PyTorch implementation the paper builds
// on defaults to it for exactly this task family) and preserves the
// fast-adaptation behaviour the paper measures; see DESIGN.md.
//
// The paper uses alpha = 0.1, beta = 1e-3 with Adam on the outer update,
// 32 tasks per iteration and 1000-frame support/query sets at 20k
// iterations; defaults here are the same knobs scaled for CPU budgets.

#include <cstddef>
#include <vector>

#include "data/featurize.h"
#include "data/fusion.h"
#include "data/split.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fuse::core {

/// How tasks are drawn from D_train.
enum class TaskMode {
  /// Definition 2 verbatim: a task is a uniform sample of fused frames.
  /// With iid tasks the inner adaptation has nothing task-specific to
  /// learn, so MAML degenerates towards plain ERM — kept for the ablation.
  kUniformFrames,
  /// A task is one (subject, movement) pair; support and query are sampled
  /// within it.  This matches the paper's framing ("adapt to new users and
  /// movements") and is what gives the meta-learned initialisation its
  /// fast-adaptation property.  Default.
  kPerSequence,
};

struct MetaConfig {
  std::size_t iterations = 200;
  std::size_t tasks_per_iteration = 8;   ///< paper: 32
  std::size_t support_size = 128;        ///< paper: 1000 frames
  std::size_t query_size = 128;          ///< paper: 1000 frames
  std::size_t inner_steps = 2;
  TaskMode task_mode = TaskMode::kPerSequence;
  /// Sample-level (inner) learning rate.  The paper quotes alpha = 0.1 in
  /// its gradient scale; with this codebase's normalized L1 loss, 0.1 lets
  /// theta drift into a "good only after adaptation" regime (theta itself
  /// degenerates), while 0.02 keeps theta meaningful and minimises the
  /// query loss — see bench/ablation_meta for the sweep.
  float alpha = 0.02f;
  float beta = 1e-3f;   ///< task-level (outer/meta) learning rate
  float grad_clip = 10.0f;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct MetaHistory {
  std::vector<float> query_loss;  ///< mean query loss per meta-iteration
};

class MetaTrainer {
 public:
  MetaTrainer(fuse::nn::Module* model, MetaConfig cfg)
      : model_(model), cfg_(cfg), outer_(cfg.beta), rng_(cfg.seed) {}

  /// Distributes the per-task inner-loop adaptations of each meta-iteration
  /// over `pool` (nullptr, the default, uses the process-global pool).  The
  /// outer loop is embarrassingly parallel — every task adapts its own
  /// clone — and stays deterministic regardless of worker count: tasks are
  /// sampled sequentially up front (one RNG stream, same draws as the
  /// serial loop), each adaptation is RNG-free, and the meta-gradient
  /// reduction runs in task order after all tasks finish.
  void set_task_pool(fuse::util::ThreadPool* pool) { pool_ = pool; }

  /// Runs meta-training over tasks sampled from `train_pool`.
  MetaHistory run(const fuse::data::FusedDataset& fused,
                  const fuse::data::Featurizer& feat,
                  const fuse::data::IndexSet& train_pool);

  /// Adapts a *clone* of the given model on a support set for a number of
  /// SGD steps and returns the query loss of the adapted clone, leaving the
  /// clone's gradients populated (exposed for tests and ablations).
  float task_adapt_and_query(fuse::nn::Module& clone,
                             const fuse::data::FusedDataset& fused,
                             const fuse::data::Featurizer& feat,
                             const fuse::data::IndexSet& support,
                             const fuse::data::IndexSet& query) const;

 private:
  fuse::nn::Module* model_;
  MetaConfig cfg_;
  fuse::nn::Adam outer_;
  fuse::util::Rng rng_;
  fuse::util::ThreadPool* pool_ = nullptr;
};

}  // namespace fuse::core

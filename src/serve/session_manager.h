#pragma once
// DEPRECATED compatibility shim — kept for exactly one PR.
//
// The serving runtime's public surface is now serve::Server
// (serve/server.h): sessions shard across N scheduler threads and
// submit_frame/submit_cube return a SubmitResult enum instead of a lossy
// bool.  SessionManager forwards everything to a Server and narrows the
// submit results back to bool (true == accepted(), i.e. the frame was
// enqueued and will produce a result) so existing call sites keep
// compiling unchanged during the migration.  New code must use
// serve::Server; the old -> new mapping is tabulated in DESIGN.md §10.

#include "serve/server.h"

namespace fuse::serve {

class SessionManager : public Server {
 public:
  using Server::Server;

  /// Deprecated: use Server::submit_frame and inspect the SubmitResult.
  bool submit_frame(SessionId id, const fuse::radar::PointCloud& cloud,
                    const fuse::human::Pose* label = nullptr) {
    return accepted(Server::submit_frame(id, cloud, label));
  }

  /// Deprecated: use Server::submit_cube and inspect the SubmitResult.
  bool submit_cube(SessionId id, fuse::radar::RadarCube cube,
                   const fuse::human::Pose* label = nullptr) {
    return accepted(Server::submit_cube(id, std::move(cube), label));
  }
};

}  // namespace fuse::serve

# Empty dependencies file for ablation_sparsity.
# This may be replaced when dependencies are built.

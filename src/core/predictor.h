#pragma once
// Stateless featurize -> predict path, factored out of FusePipeline so the
// streaming serving runtime (src/serve) can share it.
//
// A Predictor borrows a fitted Featurizer and the fusion window size and
// turns raw point-cloud windows into poses:
//
//   window of <= 2M+1 frames --pool (Eq. 3)--> one cloud
//     --featurize--> [5, 8, 8] block
//     --Module::infer (batched)--> normalized [N, 57]
//     --denormalize--> N poses
//
// It holds no mutable state, so one Predictor serves any number of
// concurrent sessions; the model is passed per call (sessions may run the
// shared meta-model or their own fine-tuned clone), and the inference
// backend (naive reference loops vs im2col+GEMM) is selected per call.

#include <cstddef>
#include <vector>

#include "data/featurize.h"
#include "human/skeleton.h"
#include "nn/module.h"
#include "radar/point_cloud.h"
#include "tensor/tensor.h"

namespace fuse::core {

/// Reusable scratch for the streaming featurize path: the fusion pool and
/// the point-selection buffer are recycled across frames, so a per-session
/// (or per-scheduler) owner pays zero steady-state allocations for
/// featurization.
struct PredictScratch {
  fuse::radar::PointCloud pool;
  fuse::data::FeaturizeScratch feat;
};

class Predictor {
 public:
  Predictor() = default;
  /// `featurizer` must outlive the Predictor and already be fitted.
  Predictor(const fuse::data::Featurizer* featurizer, std::size_t fusion_m)
      : featurizer_(featurizer), fusion_m_(fusion_m) {}

  bool valid() const { return featurizer_ != nullptr; }
  std::size_t fusion_m() const { return fusion_m_; }
  /// Frames per fusion window (2M+1).
  std::size_t window_frames() const { return 2 * fusion_m_ + 1; }

  /// Allocates an input batch [n, 5, 8, 8].
  fuse::tensor::Tensor alloc_batch(std::size_t n) const;

  /// Pools the first <= window_frames() clouds of `window` (oldest first,
  /// clamped like the dataset pipeline) and writes one normalized
  /// [5, 8, 8] block at `out`.  Throws on an empty window.
  void featurize_window(const fuse::radar::PointCloud* const* window,
                        std::size_t n_frames, float* out) const;
  void featurize_window(const std::vector<fuse::radar::PointCloud>& window,
                        float* out) const;

  /// Allocation-free variant: pooling and point selection reuse `scratch`.
  void featurize_window(const fuse::radar::PointCloud* const* window,
                        std::size_t n_frames, float* out,
                        PredictScratch& scratch) const;

  /// Batched inference: x [N, 5, 8, 8] -> N denormalized poses, through
  /// the given compute backend (defaults to the process-wide default).
  std::vector<fuse::human::Pose> predict(const fuse::nn::Module& model,
                                         const fuse::tensor::Tensor& x,
                                         fuse::nn::Backend backend) const;
  std::vector<fuse::human::Pose> predict(const fuse::nn::Module& model,
                                         const fuse::tensor::Tensor& x) const {
    return predict(model, x, fuse::nn::default_backend());
  }

  /// Single-window convenience (the original FusePipeline::predict_window
  /// path, batch size 1).
  fuse::human::Pose
  predict_window(const fuse::nn::Module& model,
                 const std::vector<fuse::radar::PointCloud>& window,
                 fuse::nn::Backend backend) const;
  fuse::human::Pose
  predict_window(const fuse::nn::Module& model,
                 const std::vector<fuse::radar::PointCloud>& window) const {
    return predict_window(model, window, fuse::nn::default_backend());
  }

  const fuse::data::Featurizer& featurizer() const { return *featurizer_; }

 private:
  const fuse::data::Featurizer* featurizer_ = nullptr;
  std::size_t fusion_m_ = 0;
};

}  // namespace fuse::core

// Cross-cutting property sweeps (parameterized gtest), complementing the
// per-module unit tests with invariants that must hold over whole
// configuration grids.

#include <gtest/gtest.h>

#include <cmath>

#include "data/builder.h"
#include "data/featurize.h"
#include "data/fusion.h"
#include "data/split.h"
#include "dsp/cfar.h"
#include "dsp/fft.h"
#include "human/movements.h"
#include "radar/config.h"
#include "radar/fast_model.h"
#include "util/rng.h"

namespace {

// ------------------------------------------------ radar config monotonics --

class BandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthSweep, RangeResolutionScalesInversely) {
  fuse::radar::RadarConfig cfg = fuse::radar::default_iwr1443_config();
  const double base_res = cfg.range_resolution_m();
  cfg.bandwidth_hz = GetParam();
  // Keep the ADC window inside the (re-derived) ramp.
  const double ratio = 3.5e9 / GetParam();
  EXPECT_NEAR(cfg.range_resolution_m(), base_res * ratio,
              1e-6 + 0.01 * base_res * ratio);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, BandwidthSweep,
                         ::testing::Values(1.0e9, 2.0e9, 3.5e9, 4.0e9));

class ChirpCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChirpCountSweep, VelocityResolutionScalesInversely) {
  fuse::radar::RadarConfig cfg = fuse::radar::default_iwr1443_config();
  cfg.chirps_per_frame = GetParam();
  // v_res = lambda / (2 N Td): doubling N halves the resolution cell.
  const double expected =
      cfg.wavelength() /
      (2.0 * static_cast<double>(GetParam()) * cfg.doppler_chirp_period_s());
  EXPECT_NEAR(cfg.velocity_resolution_mps(), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ChirpCounts, ChirpCountSweep,
                         ::testing::Values(16, 32, 64, 128));

// ------------------------------------------------------- CFAR Pfa sweep ---

class PfaSweep : public ::testing::TestWithParam<double> {};

TEST_P(PfaSweep, EmpiricalFalseAlarmRateTracksDesign) {
  const double pfa = GetParam();
  fuse::util::Rng rng(static_cast<std::uint64_t>(1.0 / pfa));
  fuse::dsp::CfarConfig cfg;
  cfg.threshold_scale = fuse::dsp::cfar_scale_for_pfa(16, pfa);
  std::size_t alarms = 0, cells = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<float> p(1024);
    for (auto& v : p)
      v = static_cast<float>(-std::log(std::max(1e-12,
                                                1.0 - rng.uniform())));
    alarms += fuse::dsp::ca_cfar_1d(p, cfg).size();
    cells += p.size();
  }
  const double rate = static_cast<double>(alarms) / static_cast<double>(cells);
  // Local-max gating only removes alarms, so rate <= ~Pfa (x3 slack), and
  // it must not collapse to zero for the looser settings.
  EXPECT_LT(rate, 3.0 * pfa + 1e-4);
  if (pfa >= 1e-2) {
    EXPECT_GT(rate, pfa / 20.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, PfaSweep,
                         ::testing::Values(1e-1, 1e-2, 1e-3));

// ----------------------------------------------- dataset label plausibility --

struct SubjectMovement {
  std::size_t subject;
  fuse::human::Movement movement;
};

class DatasetLabelSweep : public ::testing::TestWithParam<SubjectMovement> {};

TEST_P(DatasetLabelSweep, LabelsStayAnatomicallyPlausible) {
  const auto p = GetParam();
  fuse::data::BuilderConfig cfg;
  cfg.frames_per_sequence = 25;
  cfg.subjects = {p.subject};
  cfg.movements = {p.movement};
  const auto ds = fuse::data::build_dataset(cfg);
  const auto subject = fuse::human::make_subject(p.subject);
  for (const auto& f : ds.frames) {
    using fuse::human::Joint;
    // Head stays above the pelvis, everything above the floor, and the
    // whole skeleton within arm's reach of the standing spot.
    EXPECT_GT(f.label[Joint::kHead].z, f.label[Joint::kSpineBase].z - 0.1f);
    for (const auto& j : f.label.joints) {
      // The procedural FK lets a lunging back foot dip slightly below the
      // floor plane (no ground-contact constraint); bound the excursion.
      EXPECT_GT(j.z, -0.20f);
      EXPECT_LT(j.z, subject.body.height + 0.3f);
      EXPECT_NEAR(j.y, subject.style.distance_m, 1.2f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DatasetLabelSweep,
    ::testing::Values(
        SubjectMovement{0, fuse::human::Movement::kSquat},
        SubjectMovement{1, fuse::human::Movement::kLeftFrontLunge},
        SubjectMovement{2, fuse::human::Movement::kRightSideLunge},
        SubjectMovement{3, fuse::human::Movement::kRightLimbExtension},
        SubjectMovement{3, fuse::human::Movement::kBothUpperLimbExtension},
        SubjectMovement{0, fuse::human::Movement::kLeftLimbExtension}));

// --------------------------------------------- fusion/featurizer invariants --

class FusionInvariantSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FusionInvariantSweep, FusedInputsAreFiniteAndBounded) {
  const std::size_t m = GetParam();
  fuse::data::BuilderConfig cfg;
  cfg.frames_per_sequence = 20;
  cfg.subjects = {1};
  const auto ds = fuse::data::build_dataset(cfg);
  const fuse::data::FusedDataset fused(ds, m);
  fuse::data::IndexSet all(ds.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  fuse::data::Featurizer feat;
  feat.fit(ds, all);
  const auto x = feat.make_inputs(fused, all);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(x[i]));
    ASSERT_LT(std::fabs(x[i]), 50.0f);  // standardized features stay O(1-10)
  }
  const auto y = feat.make_labels(fused, all);
  for (std::size_t i = 0; i < y.numel(); ++i)
    ASSERT_TRUE(std::isfinite(y[i]));
}

INSTANTIATE_TEST_SUITE_P(Windows, FusionInvariantSweep,
                         ::testing::Values(0, 1, 2, 4));

// ------------------------------------------------ fast model sanity sweep --

class RangeSweep : public ::testing::TestWithParam<float> {};

TEST_P(RangeSweep, DetectionRateFallsWithRange) {
  // Averaged over seeds, a fixed-RCS target is detected less often (or with
  // lower SNR) as it recedes — the radar-equation backbone of the model.
  const float y = GetParam();
  fuse::radar::RadarConfig cfg = fuse::radar::default_iwr1443_config();
  cfg.static_clutter_removal = false;
  fuse::radar::FastModelParams params;
  params.fade_probability = 0.0;
  const fuse::radar::FastPointCloudModel model(cfg, params);
  double snr_acc = 0.0;
  int hits = 0;
  for (int i = 0; i < 40; ++i) {
    fuse::util::Rng rng(1000 + i);
    fuse::radar::Scene scene = {{{0.0f, y, 0.0f}, {}, 0.01f}};
    const auto cloud = model.generate(scene, rng);
    if (!cloud.empty()) {
      snr_acc += cloud.points.front().intensity;
      ++hits;
    }
  }
  if (hits > 0) {
    const double mean_snr = snr_acc / hits;
    // SNR(dB) should be within a few dB of the r^-4 law prediction
    // relative to the 2 m anchor (~27 dB for rcs 0.01 at k = 1e6).
    const double predicted =
        10.0 * std::log10(1e6 * 0.01 / std::pow(static_cast<double>(y), 4));
    EXPECT_NEAR(mean_snr, predicted, 4.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RangeSweep,
                         ::testing::Values(1.5f, 2.0f, 3.0f, 4.5f));

}  // namespace

// Tests for the utility layer: RNG statistics/determinism, the thread pool,
// table/CSV formatting and CLI parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>

#include "util/cli.h"
#include "util/geometry.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using fuse::util::Rng;
using fuse::util::Vec3;

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(10);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, GaussMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gauss();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, PoissonMeanMatchesLambda) {
  Rng rng(12);
  for (const double lambda : {0.5, 3.0, 50.0}) {
    double acc = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) acc += rng.poisson(lambda);
    EXPECT_NEAR(acc / n, lambda, 0.15 * lambda + 0.05);
  }
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(15);
  const auto idx = rng.sample_indices(20, 8);
  EXPECT_EQ(idx.size(), 8u);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (const auto i : idx) EXPECT_LT(i, 20u);
  // Oversized request clamps to n.
  EXPECT_EQ(rng.sample_indices(5, 50).size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(16);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// ----------------------------------------------------------- thread pool --

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  fuse::util::parallel_for(0, hits.size(), [&](std::size_t lo,
                                               std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool called = false;
  fuse::util::parallel_for(5, 5, [&](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForSerializesSafely) {
  std::atomic<int> total{0};
  fuse::util::parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      fuse::util::parallel_for(0, 10, [&](std::size_t l2, std::size_t h2) {
        total.fetch_add(static_cast<int>(h2 - l2));
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  fuse::util::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, MinChunkLargerThanRangeRunsSerially) {
  // min_chunk > range: the whole range must arrive as ONE chunk.
  std::atomic<int> calls{0};
  std::size_t lo_seen = 99, hi_seen = 0;
  fuse::util::parallel_for(2, 7, [&](std::size_t lo, std::size_t hi) {
    calls.fetch_add(1);
    lo_seen = lo;
    hi_seen = hi;
  }, /*min_chunk=*/100);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(lo_seen, 2u);
  EXPECT_EQ(hi_seen, 7u);
}

TEST(ThreadPool, NestedSubmitFromWorkerDoesNotDeadlock) {
  // A task submitted from inside a pool worker must still run and
  // wait_idle must observe it (the serving scheduler relies on this).
  fuse::util::ThreadPool pool(2);
  std::atomic<int> outer{0}, inner{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      outer.fetch_add(1);
      pool.submit([&] { inner.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8);
}

TEST(ThreadPool, ParallelForInsideSubmittedTaskSerializes) {
  // The global parallel_for falls back to serial execution when invoked
  // from inside a pool worker — cover it through submit().
  std::atomic<int> total{0};
  fuse::util::global_pool().submit([&] {
    fuse::util::parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  fuse::util::global_pool().wait_idle();
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, MemberParallelForFromOwnWorkerRunsInline) {
  // A pool worker calling parallel_for on its OWN pool used to be able to
  // deadlock: the call enqueues chunks and blocks, but every worker can be
  // inside that same wait with the chunks stuck behind them.  The guard
  // runs the body inline instead — the loop must complete, arrive as one
  // chunk, and execute on the submitting worker (no second thread).
  fuse::util::ThreadPool pool(2);
  std::atomic<int> total{0}, calls{0};
  std::atomic<bool> inline_on_worker{false};
  for (int rep = 0; rep < 4; ++rep) {
    pool.submit([&] {
      const auto self = std::this_thread::get_id();
      pool.parallel_for(0, 50, [&](std::size_t lo, std::size_t hi) {
        calls.fetch_add(1);
        if (std::this_thread::get_id() == self) inline_on_worker = true;
        total.fetch_add(static_cast<int>(hi - lo));
      });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(total.load(), 200);
  EXPECT_EQ(calls.load(), 4);  // one inline chunk per nested call
  EXPECT_TRUE(inline_on_worker.load());
}

TEST(ThreadPool, InsidePoolWorkerFlag) {
  EXPECT_FALSE(fuse::util::ThreadPool::inside_pool_worker());
  fuse::util::ThreadPool pool(1);
  std::atomic<bool> seen{false};
  pool.submit(
      [&] { seen = fuse::util::ThreadPool::inside_pool_worker(); });
  pool.wait_idle();
  EXPECT_TRUE(seen.load());
  EXPECT_FALSE(fuse::util::ThreadPool::inside_pool_worker());
}

TEST(ThreadPool, CrossPoolParallelForFansOutToTargetPool) {
  // A worker of pool A calling parallel_for on pool B is the driver
  // pattern (confine a workload to B's worker set): the chunks must run
  // on B's workers — not inline on A's worker — and complete without
  // deadlock (A's worker blocks on a local cv; B drains independently).
  fuse::util::ThreadPool a(1), b(2);
  std::atomic<int> total{0};
  std::atomic<bool> on_caller{false};
  a.submit([&] {
    const auto self = std::this_thread::get_id();
    b.parallel_for(0, 40, [&](std::size_t lo, std::size_t hi) {
      if (std::this_thread::get_id() == self) on_caller = true;
      total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  a.wait_idle();
  EXPECT_EQ(total.load(), 40);
  EXPECT_FALSE(on_caller.load());

  // The free (global-pool) parallel_for stays conservative: from inside
  // any pool worker it serializes inline.
  std::atomic<int> nested{0};
  std::atomic<bool> inline_on_worker{false};
  a.submit([&] {
    const auto self = std::this_thread::get_id();
    fuse::util::parallel_for(0, 30, [&](std::size_t lo, std::size_t hi) {
      if (std::this_thread::get_id() == self) inline_on_worker = true;
      nested.fetch_add(static_cast<int>(hi - lo));
    });
  });
  a.wait_idle();
  EXPECT_EQ(nested.load(), 30);
  EXPECT_TRUE(inline_on_worker.load());
}

TEST(ThreadPool, EmptyRangeWithMinChunkIsNoop) {
  bool called = false;
  fuse::util::parallel_for(3, 3, [&](std::size_t, std::size_t) {
    called = true;
  }, /*min_chunk=*/10);
  fuse::util::global_pool().parallel_for(5, 5, [&](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

// ----------------------------------------------------------------- table --

TEST(Table, RendersHeaderAndRows) {
  fuse::util::Table t("Demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  fuse::util::Table t;
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(fuse::util::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(fuse::util::Table::num(5.0, 0), "5");
}

// ------------------------------------------------------------------- cli --

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--scale=2.5", "--paper", "--seed=99",
                        "--name=test"};
  fuse::util::Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("paper"));
  EXPECT_TRUE(cli.paper());
  EXPECT_EQ(cli.get("name"), "test");
  EXPECT_EQ(cli.get_int("seed", 0), 99);
  EXPECT_EQ(cli.get("missing", "def"), "def");
  EXPECT_EQ(cli.get_double("missing", 1.5), 1.5);
}

TEST(Cli, ScaleDefaultsToOne) {
  const char* argv[] = {"prog"};
  fuse::util::Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.scale(), 1.0);
}

TEST(Cli, MalformedNumberFallsBack) {
  const char* argv[] = {"prog", "--seed=abc"};
  fuse::util::Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("seed", 7), 7);
}

TEST(Cli, ScaledHelper) {
  EXPECT_EQ(fuse::util::scaled(100, 0.5), 50u);
  EXPECT_EQ(fuse::util::scaled(100, 0.001, 10), 10u);
  EXPECT_EQ(fuse::util::scaled(3, 1.0), 3u);
}

// -------------------------------------------------------------- geometry --

TEST(Geometry, VectorAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_FLOAT_EQ((a + b).x, 5.0f);
  EXPECT_FLOAT_EQ((b - a).z, 3.0f);
  EXPECT_FLOAT_EQ(a.dot(b), 32.0f);
  const Vec3 c = a.cross(b);
  EXPECT_FLOAT_EQ(c.x, -3.0f);
  EXPECT_FLOAT_EQ(c.y, 6.0f);
  EXPECT_FLOAT_EQ(c.z, -3.0f);
  EXPECT_FLOAT_EQ(Vec3(3, 4, 0).norm(), 5.0f);
}

TEST(Geometry, NormalizedHandlesZero) {
  EXPECT_EQ(Vec3{}.normalized().norm(), 0.0f);
  EXPECT_NEAR(Vec3(0, 0, 9).normalized().z, 1.0f, 1e-6f);
}

TEST(Geometry, RodriguesRotation) {
  // Rotate x-axis 90 degrees around z: should give y-axis.
  const Vec3 r = fuse::util::rotate_axis_angle(
      {1, 0, 0}, {0, 0, 1}, fuse::util::deg2rad(90.0f));
  EXPECT_NEAR(r.x, 0.0f, 1e-6f);
  EXPECT_NEAR(r.y, 1.0f, 1e-6f);
  EXPECT_NEAR(r.z, 0.0f, 1e-6f);
}

TEST(Geometry, RotationPreservesLength) {
  fuse::util::Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    const Vec3 v{rng.uniformf(-1, 1), rng.uniformf(-1, 1),
                 rng.uniformf(-1, 1)};
    const Vec3 axis =
        Vec3{rng.uniformf(-1, 1), rng.uniformf(-1, 1), rng.uniformf(-1, 1)}
            .normalized();
    const Vec3 r =
        fuse::util::rotate_axis_angle(v, axis, rng.uniformf(0, 6.28f));
    EXPECT_NEAR(r.norm(), v.norm(), 1e-5f);
  }
}

TEST(Geometry, LerpAndSmoothstep) {
  const Vec3 m = fuse::util::lerp({0, 0, 0}, {2, 4, 6}, 0.5f);
  EXPECT_FLOAT_EQ(m.y, 2.0f);
  EXPECT_EQ(fuse::util::smoothstep(0.0f), 0.0f);
  EXPECT_EQ(fuse::util::smoothstep(1.0f), 1.0f);
  EXPECT_FLOAT_EQ(fuse::util::smoothstep(0.5f), 0.5f);
  EXPECT_EQ(fuse::util::smoothstep(-1.0f), 0.0f);
}

TEST(Geometry, Clampf) {
  EXPECT_EQ(fuse::util::clampf(5.0f, 0.0f, 1.0f), 1.0f);
  EXPECT_EQ(fuse::util::clampf(-5.0f, 0.0f, 1.0f), 0.0f);
  EXPECT_EQ(fuse::util::clampf(0.5f, 0.0f, 1.0f), 0.5f);
}

}  // namespace

#pragma once
// FNV-1a 64-bit checksum — the integrity footer of the persistable blob
// formats (nn::Module checkpoints, nn::ParamDelta clone-store files).
//
// FNV-1a is not cryptographic; it exists to turn a truncated, bit-flipped
// or garbage checkpoint file into a clean std::runtime_error at load time
// instead of a silently mis-deserialized model.  It is a few instructions
// per byte, runs once per save/load (never on a serving hot path), and has
// no dependencies, which is exactly the budget a checkpoint footer gets.

#include <cstddef>
#include <cstdint>

namespace fuse::util {

inline constexpr std::uint64_t kFnv1aSeed = 0xcbf29ce484222325ull;

/// Accumulating form: feed consecutive buffers, threading the returned
/// value through as the next call's `seed`.
inline std::uint64_t fnv1a(const void* data, std::size_t size,
                           std::uint64_t seed = kFnv1aSeed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

}  // namespace fuse::util

#include "nn/loss.h"

#include <cmath>

namespace fuse::nn {

float l1_loss(const Tensor& pred, const Tensor& target, Tensor* grad) {
  fuse::tensor::check_same_shape(pred, target, "l1_loss");
  const std::size_t n = pred.numel();
  if (grad != nullptr) *grad = Tensor(pred.shape());
  double acc = 0.0;
  const float inv = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    acc += std::fabs(d);
    if (grad != nullptr)
      (*grad)[i] = d > 0.0f ? inv : (d < 0.0f ? -inv : 0.0f);
  }
  return static_cast<float>(acc / static_cast<double>(n));
}

float l2_loss(const Tensor& pred, const Tensor& target, Tensor* grad) {
  fuse::tensor::check_same_shape(pred, target, "l2_loss");
  const std::size_t n = pred.numel();
  if (grad != nullptr) *grad = Tensor(pred.shape());
  double acc = 0.0;
  const float inv = 2.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    acc += static_cast<double>(d) * d;
    if (grad != nullptr) (*grad)[i] = inv * d;
  }
  return static_cast<float>(acc / static_cast<double>(n));
}

float huber_loss(const Tensor& pred, const Tensor& target, float delta,
                 Tensor* grad) {
  fuse::tensor::check_same_shape(pred, target, "huber_loss");
  const std::size_t n = pred.numel();
  if (grad != nullptr) *grad = Tensor(pred.shape());
  double acc = 0.0;
  const float inv = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    const float ad = std::fabs(d);
    if (ad <= delta) {
      acc += 0.5 * static_cast<double>(d) * d;
      if (grad != nullptr) (*grad)[i] = inv * d;
    } else {
      acc += static_cast<double>(delta) * (ad - 0.5f * delta);
      if (grad != nullptr) (*grad)[i] = inv * (d > 0.0f ? delta : -delta);
    }
  }
  return static_cast<float>(acc / static_cast<double>(n));
}

}  // namespace fuse::nn

#include "nn/delta.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.h"
#include "util/checksum.h"
#include "util/fault.h"

namespace fuse::nn {

namespace {

constexpr char kMagic[8] = {'F', 'U', 'S', 'E', 'D', 'L', 'T', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("ParamDelta::load: truncated stream");
  return v;
}

/// Bitwise float comparison: the fp32 encoding records indices whose BIT
/// patterns differ (so a -0.0f vs +0.0f drift round-trips too, and no
/// float compare can mis-classify a NaN).
bool bits_differ(float a, float b) {
  std::uint32_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua != ub;
}

ParamDelta::Entry encode_fp32(const float* a, const float* b, std::size_t n,
                              float threshold) {
  // threshold 0 records every bit difference (bit-exact contract, and a
  // NaN or -0.0 drift can never be silently dropped); a positive
  // threshold keeps only |a - b| > threshold, written so a NaN difference
  // still counts as changed.
  const auto changed_at = [&](std::size_t i) {
    if (!bits_differ(a[i], b[i])) return false;
    return threshold <= 0.0f || !(std::fabs(a[i] - b[i]) <= threshold);
  };
  ParamDelta::Entry e;
  e.numel = n;
  std::size_t changed = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (changed_at(i)) ++changed;
  // Sparse entries cost 8 bytes (u32 idx + fp32 value) vs 4 dense; past
  // half the tensor the dense raw dump is smaller and stays bit-exact.
  if (changed * 2 >= n) {
    e.kind = ParamDelta::Entry::Kind::kDenseFp32;
    e.values.assign(a, a + n);
    return e;
  }
  e.kind = ParamDelta::Entry::Kind::kSparseFp32;
  e.idx.reserve(changed);
  e.values.reserve(changed);
  for (std::size_t i = 0; i < n; ++i) {
    if (changed_at(i)) {
      e.idx.push_back(static_cast<std::uint32_t>(i));
      e.values.push_back(a[i]);
    }
  }
  return e;
}

ParamDelta::Entry encode_int8(const float* a, const float* b, std::size_t n) {
  ParamDelta::Entry e;
  e.kind = ParamDelta::Entry::Kind::kInt8;
  e.numel = n;
  float absmax = 0.0f;
  for (std::size_t i = 0; i < n; ++i)
    absmax = std::max(absmax, std::fabs(a[i] - b[i]));
  e.scale = absmax > 0.0f ? absmax / 127.0f : 0.0f;
  e.q.resize(n);
  if (e.scale == 0.0f) return e;  // identical tensors: all-zero delta
  const float inv = 1.0f / e.scale;
  for (std::size_t i = 0; i < n; ++i) {
    const float q = std::nearbyint((a[i] - b[i]) * inv);
    e.q[i] = static_cast<std::int8_t>(std::max(-127.0f, std::min(127.0f, q)));
  }
  return e;
}

std::size_t entry_payload_bytes(const ParamDelta::Entry& e) {
  // kind u8 + numel u64 + per-kind payload (count u64 / scale fp32).
  std::size_t bytes = 1 + sizeof(std::uint64_t);
  switch (e.kind) {
    case ParamDelta::Entry::Kind::kSparseFp32:
      bytes += sizeof(std::uint64_t) +
               e.idx.size() * (sizeof(std::uint32_t) + sizeof(float));
      break;
    case ParamDelta::Entry::Kind::kDenseFp32:
      bytes += e.values.size() * sizeof(float);
      break;
    case ParamDelta::Entry::Kind::kInt8:
      bytes += sizeof(float) + e.q.size();
      break;
  }
  return bytes;
}

void save_entry(std::ostream& os, const ParamDelta::Entry& e) {
  const auto kind = static_cast<std::uint8_t>(e.kind);
  os.write(reinterpret_cast<const char*>(&kind), 1);
  write_u64(os, e.numel);
  switch (e.kind) {
    case ParamDelta::Entry::Kind::kSparseFp32:
      write_u64(os, e.idx.size());
      os.write(reinterpret_cast<const char*>(e.idx.data()),
               static_cast<std::streamsize>(e.idx.size() *
                                            sizeof(std::uint32_t)));
      os.write(reinterpret_cast<const char*>(e.values.data()),
               static_cast<std::streamsize>(e.values.size() * sizeof(float)));
      break;
    case ParamDelta::Entry::Kind::kDenseFp32:
      os.write(reinterpret_cast<const char*>(e.values.data()),
               static_cast<std::streamsize>(e.values.size() * sizeof(float)));
      break;
    case ParamDelta::Entry::Kind::kInt8:
      os.write(reinterpret_cast<const char*>(&e.scale), sizeof(float));
      os.write(reinterpret_cast<const char*>(e.q.data()),
               static_cast<std::streamsize>(e.q.size()));
      break;
  }
}

ParamDelta::Entry load_entry(std::istream& is) {
  ParamDelta::Entry e;
  std::uint8_t kind = 0;
  is.read(reinterpret_cast<char*>(&kind), 1);
  if (!is || kind > 2)
    throw std::runtime_error("ParamDelta::load: corrupt entry kind");
  e.kind = static_cast<ParamDelta::Entry::Kind>(kind);
  e.numel = read_u64(is);
  switch (e.kind) {
    case ParamDelta::Entry::Kind::kSparseFp32: {
      const std::uint64_t nnz = read_u64(is);
      if (nnz > e.numel)
        throw std::runtime_error("ParamDelta::load: corrupt sparse count");
      e.idx.resize(nnz);
      e.values.resize(nnz);
      is.read(reinterpret_cast<char*>(e.idx.data()),
              static_cast<std::streamsize>(nnz * sizeof(std::uint32_t)));
      is.read(reinterpret_cast<char*>(e.values.data()),
              static_cast<std::streamsize>(nnz * sizeof(float)));
      break;
    }
    case ParamDelta::Entry::Kind::kDenseFp32:
      e.values.resize(e.numel);
      is.read(reinterpret_cast<char*>(e.values.data()),
              static_cast<std::streamsize>(e.numel * sizeof(float)));
      break;
    case ParamDelta::Entry::Kind::kInt8:
      is.read(reinterpret_cast<char*>(&e.scale), sizeof(float));
      e.q.resize(e.numel);
      is.read(reinterpret_cast<char*>(e.q.data()),
              static_cast<std::streamsize>(e.numel));
      break;
  }
  if (!is) throw std::runtime_error("ParamDelta::load: truncated stream");
  return e;
}

}  // namespace

std::size_t ParamDelta::payload_bytes() const {
  std::size_t bytes = sizeof(std::uint64_t);  // entry count
  for (const auto& e : entries) bytes += entry_payload_bytes(e);
  return bytes;
}

void ParamDelta::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  write_u64(os, arch.size());
  os.write(arch.data(), static_cast<std::streamsize>(arch.size()));
  std::ostringstream payload_os(std::ios::binary);
  write_u64(payload_os, entries.size());
  for (const auto& e : entries) save_entry(payload_os, e);
  const std::string payload = payload_os.str();
  write_u64(os, payload.size());
  write_u64(os, fuse::util::fnv1a(payload.data(), payload.size()));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

ParamDelta ParamDelta::load(std::istream& is) {
  char magic[sizeof(kMagic)] = {};
  is.read(magic, sizeof(magic));
  if (!is ||
      std::string(magic, sizeof(magic)) != std::string(kMagic, sizeof(kMagic)))
    throw std::runtime_error("ParamDelta::load: not a FUSE delta stream");
  ParamDelta d;
  const std::uint64_t arch_len = read_u64(is);
  if (arch_len > 4096)
    throw std::runtime_error("ParamDelta::load: corrupt architecture tag");
  d.arch.resize(arch_len);
  is.read(d.arch.data(), static_cast<std::streamsize>(arch_len));
  if (!is) throw std::runtime_error("ParamDelta::load: truncated stream");
  const std::uint64_t payload_len = read_u64(is);
  // A delta can never legitimately outweigh a dense fp32 dump of a model
  // we'd serve (tensors are a few MB); 1 GiB bounds a corrupt length
  // before the allocation below trusts it.
  if (payload_len > (1ull << 30))
    throw std::runtime_error("ParamDelta::load: implausible payload length");
  const std::uint64_t stored_sum = read_u64(is);
  std::string payload(payload_len, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_len));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != payload_len)
    throw std::runtime_error("ParamDelta::load: truncated stream");
  if (fuse::util::fnv1a(payload.data(), payload.size()) != stored_sum)
    throw std::runtime_error(
        "ParamDelta::load: payload checksum mismatch (corrupt delta file)");
  std::istringstream payload_is(payload, std::ios::binary);
  const std::uint64_t count = read_u64(payload_is);
  if (count > 65536)
    throw std::runtime_error("ParamDelta::load: implausible entry count");
  d.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    d.entries.push_back(load_entry(payload_is));
  return d;
}

void ParamDelta::save_file(const std::string& path) const {
  // Crash consistency: serialize fully in memory, then atomically replace
  // the destination (tmp + flush + rename).  A crash — or an injected
  // fault — mid-write can therefore never leave a half-written checkpoint
  // under the final name; the previous checkpoint (if any) survives
  // intact.
  std::ostringstream os(std::ios::binary);
  save(os);
  if (!os)
    throw std::runtime_error("ParamDelta::save_file: serialization failed");
  fuse::util::write_file_atomic(path, os.str());
}

ParamDelta ParamDelta::load_file(const std::string& path) {
  if (fuse::util::fault_fire(fuse::util::FaultPoint::kDiskRead))
    throw std::runtime_error("ParamDelta::load_file: injected read fault for " +
                             path);
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw std::runtime_error("ParamDelta::load_file: cannot open " + path);
  return load(is);
}

ParamDelta extract_delta(const Module& adapted, const Module& base,
                         const DeltaConfig& cfg) {
  const auto pa = adapted.params();
  const auto pb = base.params();
  if (adapted.arch_name() != base.arch_name() || pa.size() != pb.size())
    throw std::invalid_argument(
        "extract_delta: architecture mismatch (" + adapted.arch_name() +
        " vs " + base.arch_name() + ")");
  ParamDelta d;
  d.arch = base.arch_name();
  d.entries.reserve(pa.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i]->shape() != pb[i]->shape())
      throw std::invalid_argument("extract_delta: parameter shape mismatch");
    const std::size_t n = pa[i]->numel();
    d.entries.push_back(
        cfg.mode == DeltaMode::kInt8
            ? encode_int8(pa[i]->data(), pb[i]->data(), n)
            : encode_fp32(pa[i]->data(), pb[i]->data(), n,
                          cfg.sparse_threshold));
  }
  return d;
}

void apply_delta(const Module& base, const ParamDelta& delta, Module& target) {
  if (delta.arch != base.arch_name() || delta.arch != target.arch_name())
    throw std::runtime_error("apply_delta: architecture mismatch (delta '" +
                             delta.arch + "' vs base '" + base.arch_name() +
                             "' / target '" + target.arch_name() + "')");
  const auto pb = base.params();
  auto pt = target.params();
  if (delta.entries.size() != pb.size() || pb.size() != pt.size())
    throw std::runtime_error("apply_delta: parameter count mismatch");
  for (std::size_t i = 0; i < pt.size(); ++i) {
    const auto& e = delta.entries[i];
    const std::size_t n = pt[i]->numel();
    if (e.numel != n || pb[i]->numel() != n)
      throw std::runtime_error("apply_delta: parameter size mismatch");
    float* out = pt[i]->data();
    const float* b = pb[i]->data();
    switch (e.kind) {
      case ParamDelta::Entry::Kind::kSparseFp32:
        if (out != b) std::memcpy(out, b, n * sizeof(float));
        for (std::size_t k = 0; k < e.idx.size(); ++k) {
          if (e.idx[k] >= n)
            throw std::runtime_error("apply_delta: index out of range");
          out[e.idx[k]] = e.values[k];
        }
        break;
      case ParamDelta::Entry::Kind::kDenseFp32:
        if (e.values.size() != n)
          throw std::runtime_error("apply_delta: dense size mismatch");
        std::memcpy(out, e.values.data(), n * sizeof(float));
        break;
      case ParamDelta::Entry::Kind::kInt8:
        if (e.q.size() != n)
          throw std::runtime_error("apply_delta: int8 size mismatch");
        for (std::size_t k = 0; k < n; ++k)
          out[k] = b[k] + static_cast<float>(e.q[k]) * e.scale;
        break;
    }
  }
}

std::unique_ptr<Module> rehydrate_from_delta(const Module& base,
                                             const ParamDelta& delta) {
  auto clone = base.clone();
  apply_delta(base, delta, *clone);
  return clone;
}

}  // namespace fuse::nn

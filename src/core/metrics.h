#pragma once
// Evaluation metrics and curve utilities for the FUSE experiments.

#include <cstddef>
#include <vector>

#include "data/featurize.h"
#include "data/fusion.h"
#include "nn/module.h"

namespace fuse::core {

/// Per-axis mean absolute error, in centimetres (the paper's Table 1/2 unit).
struct MaeCm {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  double average() const { return (x + y + z) / 3.0; }
};

/// Evaluates a model on the given fused-sample indices (batched inference).
MaeCm evaluate(const fuse::nn::Module& model,
               const fuse::data::FusedDataset& fused,
               const fuse::data::Featurizer& feat,
               const fuse::data::IndexSet& indices,
               std::size_t batch_size = 256);

/// Per-joint MAE (cm, averaged over axes) — used by the rehab example.
std::vector<double> per_joint_mae_cm(const fuse::nn::Module& model,
                                     const fuse::data::FusedDataset& fused,
                                     const fuse::data::Featurizer& feat,
                                     const fuse::data::IndexSet& indices,
                                     std::size_t batch_size = 256);

/// MAE-vs-epoch curves for a fine-tuning run (index 0 = before any
/// fine-tuning), on the new (held-out) data and on the original data.
struct FineTuneCurve {
  std::vector<double> new_data_cm;
  std::vector<double> original_cm;
};

/// The paper's "intersection": with `a` the baseline's new-data curve and
/// `b` FUSE's, finds where b first drops below a, then returns the first
/// subsequent epoch at which a catches back up (a[e] <= b[e]).  Returns the
/// curve size if the baseline never catches up.
std::size_t intersection_epoch(const std::vector<double>& a,
                               const std::vector<double>& b);

}  // namespace fuse::core

#include "dsp/cfar.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fuse::dsp {

float cfar_scale_for_pfa(std::size_t n_train, double pfa) {
  if (n_train == 0 || pfa <= 0.0 || pfa >= 1.0)
    throw std::invalid_argument("cfar_scale_for_pfa: bad arguments");
  const double n = static_cast<double>(n_train);
  return static_cast<float>(n * (std::pow(pfa, -1.0 / n) - 1.0));
}

namespace {

// Mean of training cells around index i (1-D), skipping guards and clipping
// at the array edges.  Returns the number of cells actually used.
std::size_t training_mean(std::span<const float> p, std::size_t i,
                          const CfarConfig& cfg, float* mean_out) {
  const std::size_t n = p.size();
  double acc = 0.0;
  std::size_t count = 0;
  const std::size_t g = cfg.guard_cells, t = cfg.train_cells;
  // Leading side.
  for (std::size_t k = 1; k <= t; ++k) {
    const std::size_t off = g + k;
    if (i >= off) {
      acc += p[i - off];
      ++count;
    }
    if (i + off < n) {
      acc += p[i + off];
      ++count;
    }
  }
  *mean_out = count > 0 ? static_cast<float>(acc / count) : 0.0f;
  return count;
}

}  // namespace

std::vector<Detection1d> ca_cfar_1d(std::span<const float> power,
                                    const CfarConfig& cfg) {
  std::vector<Detection1d> out;
  const std::size_t n = power.size();
  for (std::size_t i = 0; i < n; ++i) {
    float noise = 0.0f;
    if (training_mean(power, i, cfg, &noise) == 0) continue;
    const float threshold = cfg.threshold_scale * noise;
    if (power[i] > threshold && noise > 0.0f) {
      // Local-maximum gate: one detection per peak.
      const bool left_ok = i == 0 || power[i] >= power[i - 1];
      const bool right_ok = i + 1 == n || power[i] > power[i + 1];
      if (left_ok && right_ok)
        out.push_back({i, power[i], threshold, power[i] / noise});
    }
  }
  return out;
}

std::vector<Detection1d> os_cfar_1d(std::span<const float> power,
                                    const CfarConfig& cfg) {
  std::vector<Detection1d> out;
  const std::size_t n = power.size();
  std::vector<float> train;
  train.reserve(2 * cfg.train_cells);
  for (std::size_t i = 0; i < n; ++i) {
    train.clear();
    const std::size_t g = cfg.guard_cells, t = cfg.train_cells;
    for (std::size_t k = 1; k <= t; ++k) {
      const std::size_t off = g + k;
      if (i >= off) train.push_back(power[i - off]);
      if (i + off < n) train.push_back(power[i + off]);
    }
    if (train.empty()) continue;
    const std::size_t rank = std::min(
        train.size() - 1,
        static_cast<std::size_t>(cfg.os_rank_fraction *
                                 static_cast<float>(train.size())));
    std::nth_element(train.begin(), train.begin() + rank, train.end());
    const float noise = train[rank];
    const float threshold = cfg.threshold_scale * noise;
    if (power[i] > threshold && noise > 0.0f) {
      const bool left_ok = i == 0 || power[i] >= power[i - 1];
      const bool right_ok = i + 1 == n || power[i] > power[i + 1];
      if (left_ok && right_ok)
        out.push_back({i, power[i], threshold, power[i] / noise});
    }
  }
  return out;
}

std::vector<Detection2d> ca_cfar_2d(std::span<const float> power_map,
                                    std::size_t n_range,
                                    std::size_t n_doppler,
                                    const CfarConfig& cfg) {
  if (power_map.size() != n_range * n_doppler)
    throw std::invalid_argument("ca_cfar_2d: map size mismatch");
  std::vector<Detection2d> out;
  auto at = [&](std::size_t r, std::size_t d) -> float {
    return power_map[r * n_doppler + d];
  };

  for (std::size_t r = 0; r < n_range; ++r) {
    for (std::size_t d = 0; d < n_doppler; ++d) {
      const float cut = at(r, d);
      if (cut <= 0.0f) continue;

      // Doppler-axis training window (wraps: Doppler spectrum is circular).
      double acc_d = 0.0;
      std::size_t cnt_d = 0;
      for (std::size_t k = 1; k <= cfg.train_cells; ++k) {
        const std::size_t off = (cfg.guard_cells + k) % n_doppler;
        acc_d += at(r, (d + off) % n_doppler);
        acc_d += at(r, (d + n_doppler - off) % n_doppler);
        cnt_d += 2;
      }
      if (cnt_d == 0) continue;
      const float noise_d = static_cast<float>(acc_d / cnt_d);
      if (cut <= cfg.threshold_scale * noise_d) continue;

      float noise = noise_d;
      if (cfg.mode_2d == Cfar2dMode::kCross) {
        // Range-axis training window (clipped at the edges).
        double acc_r = 0.0;
        std::size_t cnt_r = 0;
        for (std::size_t k = 1; k <= cfg.train_cells; ++k) {
          const std::size_t off = cfg.guard_cells + k;
          if (r >= off) { acc_r += at(r - off, d); ++cnt_r; }
          if (r + off < n_range) { acc_r += at(r + off, d); ++cnt_r; }
        }
        if (cnt_r == 0) continue;
        const float noise_r = static_cast<float>(acc_r / cnt_r);
        if (cut <= cfg.threshold_scale * noise_r) continue;
        noise = 0.5f * (noise_r + noise_d);
      }

      // Local-maximum gating.
      bool is_peak = true;
      const int r_lo = cfg.local_max_2d == CfarLocalMax::kFull ? -1 : 0;
      const int r_hi = cfg.local_max_2d == CfarLocalMax::kFull ? 1 : 0;
      if (cfg.local_max_2d != CfarLocalMax::kNone) {
        for (int dr = r_lo; dr <= r_hi && is_peak; ++dr) {
          for (int dd = -1; dd <= 1; ++dd) {
            if (dr == 0 && dd == 0) continue;
            const std::ptrdiff_t rr = static_cast<std::ptrdiff_t>(r) + dr;
            if (rr < 0 || rr >= static_cast<std::ptrdiff_t>(n_range))
              continue;
            const std::size_t dd_idx =
                (d + n_doppler + static_cast<std::size_t>(dd + 1) - 1) %
                n_doppler;
            const float nb = at(static_cast<std::size_t>(rr), dd_idx);
            // Strict inequality on "later" cells breaks plateau ties.
            if (nb > cut || (nb == cut && (dr > 0 || (dr == 0 && dd > 0)))) {
              is_peak = false;
              break;
            }
          }
        }
      }
      if (!is_peak) continue;

      out.push_back({r, d, cut, noise > 0.0f ? cut / noise : 0.0f});
    }
  }
  return out;
}

}  // namespace fuse::dsp

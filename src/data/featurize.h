#pragma once
// MARS-style featurization: point cloud -> fixed 8 x 8 x 5 feature map.
//
// The MARS baseline (which FUSE adopts) arranges a frame's points into an
// 8x8 grid with 5 channels (x, y, z, doppler, intensity): points are ranked
// by intensity, the strongest 64 kept, re-sorted spatially (top-to-bottom,
// left-to-right) for spatial coherence, and zero-padded when fewer than 64
// points exist.
//
// Multi-frame fusion (Eq. 3) concatenates the 2M+1 constituent frames into
// ONE point set before this step; the input stays 8x8x5 and the CNN is
// bit-identical across fusion settings — the paper is explicit that the
// FUSE network "has the same dimensions and model size" as the baseline and
// that fusion is a pure pre-processing step.  Fusion therefore acts as
// point-pool enrichment: sparse/faded frames borrow the strongest points of
// their neighbours, while too wide a window (M=2) pollutes the pool with
// stale points from a body that has since moved.
//
// Feature and label normalisation statistics are estimated on the training
// split only and applied everywhere (fit/apply separation, as in any honest
// pipeline).

#include <array>
#include <cstddef>

#include "data/dataset.h"
#include "data/fusion.h"
#include "tensor/tensor.h"

namespace fuse::data {

inline constexpr std::size_t kGridH = 8;
inline constexpr std::size_t kGridW = 8;
inline constexpr std::size_t kPointsPerFrame = kGridH * kGridW;  // 64
inline constexpr std::size_t kChannelsPerFrame = 5;  // x, y, z, doppler, snr

/// Per-channel affine normalisation (x - mean) / std, shared by every
/// constituent frame block.
struct ChannelStats {
  std::array<float, kChannelsPerFrame> mean{};
  std::array<float, kChannelsPerFrame> stddev{};

  ChannelStats() {
    mean.fill(0.0f);
    stddev.fill(1.0f);
  }
};

/// Label (57-dim joint vector) normalisation.
struct LabelStats {
  std::array<float, 3> mean{};    ///< per axis (x, y, z)
  std::array<float, 3> stddev{};

  LabelStats() {
    mean.fill(0.0f);
    stddev.fill(1.0f);
  }
};

/// Reusable scratch for frame_block(): the point-selection buffer is
/// recycled across calls, so a steady-state featurize loop (the serving
/// scheduler, make_inputs) never allocates per frame.
struct FeaturizeScratch {
  std::vector<fuse::radar::RadarPoint> points;
};

class Featurizer {
 public:
  Featurizer() = default;

  /// Estimates channel and label statistics from the given training frames.
  void fit(const Dataset& dataset, const IndexSet& train_indices);

  const ChannelStats& channel_stats() const { return channel_stats_; }
  const LabelStats& label_stats() const { return label_stats_; }

  /// Featurizes one point cloud (a single frame or a fused pool) into a
  /// normalized [5, 8, 8] block written at `out`
  /// (kChannelsPerFrame * kGridH * kGridW floats).
  void frame_block(const fuse::radar::PointCloud& cloud, float* out) const;

  /// Allocation-free variant: the point-selection buffer comes from
  /// `scratch` (identical output).
  void frame_block(const fuse::radar::PointCloud& cloud, float* out,
                   FeaturizeScratch& scratch) const;

  /// Builds the input batch [N, 5, 8, 8]: each sample's constituent frames
  /// are pooled into one cloud and featurized (Eq. 3 fusion).
  fuse::tensor::Tensor
  make_inputs(const FusedDataset& fused, const IndexSet& sample_indices) const;

  /// Builds the normalized label batch [N, 57].
  fuse::tensor::Tensor
  make_labels(const FusedDataset& fused, const IndexSet& sample_indices) const;

  /// Converts a normalized [N, 57] prediction back to metres.
  fuse::tensor::Tensor denormalize_labels(const fuse::tensor::Tensor& y) const;

  /// Normalizes a single pose into a 57-float vector (test helper).
  std::array<float, fuse::human::kNumCoords>
  normalize_pose(const fuse::human::Pose& pose) const;

 private:
  ChannelStats channel_stats_;
  LabelStats label_stats_;
};

/// Mean absolute error per axis between prediction and target label batches
/// (both normalized [N, 57]); returned in metres {x, y, z}.
std::array<double, 3> mae_per_axis_m(const fuse::tensor::Tensor& pred,
                                     const fuse::tensor::Tensor& target,
                                     const LabelStats& stats);

}  // namespace fuse::data

# Empty dependencies file for test_radar_calibration.
# This may be replaced when dependencies are built.

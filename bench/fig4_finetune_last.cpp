// Reproduces Figure 4 (and the "Last layer" half of Table 2): the same
// adaptation experiment as Figure 3, but fine-tuning ONLY the last fully
// connected layer.
//
// Paper shape: same qualitative pattern as Figure 3 but weaker — the frozen
// backbone limits adaptation (FUSE reaches 8.3 cm rather than 6.0 cm at
// 5 epochs; intersection moves to ~16 epochs; forgetting is milder for the
// baseline early on but its original-data MAE still climbs to 31 cm by
// epoch 50 in the paper).
//
// Usage: fig4_finetune_last [--scale=1.0] [--paper] [--out=DIR]

#include <cstdio>

#include "experiment_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const fuse::util::Cli cli(argc, argv);
  const auto cfg = fuse::bench::AdaptationConfig::from_cli(cli);

  std::printf("Figure 4 — fine-tune LAST layer only (baseline vs FUSE)\n");
  fuse::bench::AdaptationLab lab(cfg, cli.out_dir());
  const auto [base, fuse_curve] = lab.run_finetune(/*last_layer_only=*/true);
  lab.write_curves_csv(cli.out_dir() + "/fig4_curves.csv", base, fuse_curve);

  fuse::util::Table ta("\nFigure 4(a): MAE on ORIGINAL data vs fine-tune "
                       "epoch (cm)");
  ta.set_header({"epoch", "baseline", "FUSE"});
  fuse::util::Table tb("Figure 4(b): MAE on NEW data vs fine-tune epoch "
                       "(cm)");
  tb.set_header({"epoch", "baseline", "FUSE"});
  for (std::size_t e = 0; e < base.new_data_cm.size();
       e += (e < 10 ? 1 : 5)) {
    ta.add_row({std::to_string(e), fuse::bench::fmt_cm(base.original_cm[e]),
                fuse::bench::fmt_cm(fuse_curve.original_cm[e])});
    tb.add_row({std::to_string(e), fuse::bench::fmt_cm(base.new_data_cm[e]),
                fuse::bench::fmt_cm(fuse_curve.new_data_cm[e])});
  }
  ta.print();
  tb.print();

  const std::size_t cross =
      fuse::core::intersection_epoch(base.new_data_cm,
                                     fuse_curve.new_data_cm);
  const std::size_t last = base.new_data_cm.size() - 1;
  std::printf("\nSummary (last layer):\n");
  std::printf("  FUSE new-data MAE @5 epochs:      %.1f cm (paper 8.3)\n",
              fuse_curve.new_data_cm[std::min<std::size_t>(5, last)]);
  std::printf("  baseline new-data MAE @5 epochs:  %.1f cm (paper 9.6)\n",
              base.new_data_cm[std::min<std::size_t>(5, last)]);
  std::printf("  intersection epoch:               %zu (paper 16)\n", cross);
  std::printf("  baseline original MAE @%zu:        %.1f cm (paper 31.0)\n",
              last, base.original_cm[last]);
  std::printf("  FUSE original MAE @%zu:            %.1f cm (paper 7.8)\n",
              last, fuse_curve.original_cm[last]);
  return 0;
}

#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.h"

namespace fuse::tensor {

namespace {

inline std::int8_t clamp_s8(float v, float lo, float hi) {
  return static_cast<std::int8_t>(std::lround(std::min(hi, std::max(lo, v))));
}

}  // namespace

AffineParams affine_from_range(float lo, float hi) {
  // Widen to include zero so that 0.0f quantizes exactly: conv zero padding
  // and ReLU outputs must survive the round trip bit-for-bit at zero.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  AffineParams p;
  if (hi - lo <= 0.0f) return p;  // degenerate range: identity-ish scale
  p.scale = (hi - lo) / 255.0f;
  // zp maps lo -> -128; rounding keeps it representable in int8.
  p.zp = static_cast<std::int32_t>(std::lround(-128.0f - lo / p.scale));
  p.zp = std::max(-128, std::min(127, p.zp));
  return p;
}

void quantize_per_channel(const Tensor& w, std::vector<float>& scales,
                          std::vector<std::int8_t>& q,
                          std::vector<std::int32_t>& row_sums) {
  if (w.ndim() != 2)
    throw std::invalid_argument("quantize_per_channel: weights must be 2-D");
  const std::size_t rows = w.dim(0), cols = w.dim(1);
  scales.assign(rows, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w.data() + r * cols;
    float absmax = 0.0f;
    for (std::size_t c = 0; c < cols; ++c)
      absmax = std::max(absmax, std::fabs(row[c]));
    scales[r] = absmax / 127.0f;
  }
  quantize_per_channel_with_scales(w, scales, q, row_sums);
}

void quantize_per_channel_with_scales(const Tensor& w,
                                      const std::vector<float>& scales,
                                      std::vector<std::int8_t>& q,
                                      std::vector<std::int32_t>& row_sums) {
  if (w.ndim() != 2)
    throw std::invalid_argument("quantize_per_channel: weights must be 2-D");
  const std::size_t rows = w.dim(0), cols = w.dim(1);
  if (scales.size() != rows)
    throw std::invalid_argument("quantize_per_channel: scales size mismatch");
  q.resize(rows * cols);
  row_sums.assign(rows, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w.data() + r * cols;
    std::int8_t* qrow = q.data() + r * cols;
    const float inv = scales[r] > 0.0f ? 1.0f / scales[r] : 0.0f;
    std::int32_t sum = 0;
    for (std::size_t c = 0; c < cols; ++c) {
      qrow[c] = clamp_s8(row[c] * inv, -127.0f, 127.0f);
      sum += qrow[c];
    }
    row_sums[r] = sum;
  }
}

Tensor dequantize_per_channel(const std::vector<std::int8_t>& q,
                              const Shape& shape,
                              const std::vector<float>& scales) {
  if (shape.size() != 2 || shape_numel(shape) != q.size() ||
      scales.size() != shape[0])
    throw std::invalid_argument("dequantize_per_channel: shape mismatch");
  Tensor w(shape);
  const std::size_t cols = shape[1];
  for (std::size_t r = 0; r < shape[0]; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      w.data()[r * cols + c] =
          static_cast<float>(q[r * cols + c]) * scales[r];
  return w;
}

void quantize_affine(const float* x, std::size_t n, AffineParams p,
                     std::int8_t* q) {
  const float inv = 1.0f / p.scale;
  const float zp = static_cast<float>(p.zp);
  for (std::size_t i = 0; i < n; ++i)
    q[i] = clamp_s8(x[i] * inv + zp, -128.0f, 127.0f);
}

void quantize_affine_transposed(const float* x, std::size_t rows,
                                std::size_t cols, AffineParams p,
                                std::int8_t* q) {
  const float inv = 1.0f / p.scale;
  const float zp = static_cast<float>(p.zp);
  // Read rows contiguously (large), scatter into the transposed layout;
  // rows (= C·k·k for the convolutions) is small, so the write stride
  // stays cache-resident.
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    std::int8_t* qcol = q + r;
    for (std::size_t c = 0; c < cols; ++c)
      qcol[c * rows] = clamp_s8(row[c] * inv + zp, -128.0f, 127.0f);
  }
}

void gemm_s8s8s32_nt(const std::int8_t* a, const std::int8_t* b,
                     std::int32_t* c, std::size_t m, std::size_t k,
                     std::size_t n) {
  // Widen the small operand once; each worker widens one b row at a time
  // into thread-local scratch.  The int16 dot product is the pattern the
  // compiler lowers to widening multiply-accumulate (pmaddwd-style), which
  // is what makes the int8 path compute-competitive with the fp32 GEMM
  // while moving a quarter of the bytes.
  thread_local std::vector<std::int16_t> a16_tl;
  a16_tl.resize(m * k);
  std::int16_t* a16 = a16_tl.data();
  for (std::size_t i = 0; i < m * k; ++i) a16[i] = a[i];

  fuse::util::parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    thread_local std::vector<std::int16_t> b16_tl;
    b16_tl.resize(k);
    std::int16_t* b16 = b16_tl.data();
    for (std::size_t j = lo; j < hi; ++j) {
      const std::int8_t* brow = b + j * k;
      for (std::size_t kk = 0; kk < k; ++kk) b16[kk] = brow[kk];
      // All m dot products against this widened row; m is small (batch
      // rows or conv output channels), so the row stays in L1.
      std::size_t i = 0;
      for (; i + 2 <= m; i += 2) {
        const std::int16_t* r0 = a16 + (i + 0) * k;
        const std::int16_t* r1 = a16 + (i + 1) * k;
        std::int32_t acc0 = 0, acc1 = 0;
        for (std::size_t kk = 0; kk < k; ++kk) {
          const std::int32_t bv = b16[kk];
          acc0 += static_cast<std::int32_t>(r0[kk]) * bv;
          acc1 += static_cast<std::int32_t>(r1[kk]) * bv;
        }
        c[(i + 0) * n + j] = acc0;
        c[(i + 1) * n + j] = acc1;
      }
      for (; i < m; ++i) {
        const std::int16_t* r0 = a16 + i * k;
        std::int32_t acc = 0;
        for (std::size_t kk = 0; kk < k; ++kk)
          acc += static_cast<std::int32_t>(r0[kk]) * b16[kk];
        c[i * n + j] = acc;
      }
    }
  });
}

}  // namespace fuse::tensor

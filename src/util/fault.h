#pragma once
// Deterministic fault injection for the serving plane's chaos tests.
//
// Each injection point (disk write error, torn write, corrupt input, ...)
// is a named site in production code that asks `fault_fire(point)` whether
// this occurrence should fail.  The decision is a pure function of
// (seed, point, occurrence index): a per-point atomic counter indexes a
// splitmix64 stream, so a chaos run with a fixed seed injects the same
// NUMBER of faults at the same per-point occurrence indices on every
// machine and every repetition — no wall clock, no global RNG state that
// thread interleaving could perturb.
//
// Gating mirrors the telemetry layer (serve/telemetry.h):
//  * compile time — -DFUSE_FAULT_INJECT=0 (CMake option FUSE_FAULT=OFF)
//    folds every `fault_fire` call to a constant false, so release builds
//    for production carry zero fault-injection branches;
//  * runtime — the layer is compiled in by default but disabled until
//    fault_configure() arms it, so ordinary tests and benches never pay
//    more than one relaxed atomic load per site.
//
// Production code NEVER changes behaviour based on the config beyond the
// injected failure itself: a fired kDiskWrite point throws the same
// std::runtime_error a real failed write would, a fired kTornWrite
// truncates the bytes a real power loss would, and the recovery paths
// under test cannot tell the difference.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#ifndef FUSE_FAULT_INJECT
#define FUSE_FAULT_INJECT 1
#endif

namespace fuse::util {

inline constexpr bool kFaultCompiled = FUSE_FAULT_INJECT != 0;

/// The injection-point taxonomy.  Sites live in nn/delta.cpp (disk I/O via
/// util/atomic_file.h), serve/clone_store (checkpoint + manifest I/O),
/// serve/shard (input corruption), serve/scheduler (latency spikes),
/// serve/server (live migration) and serve/reshard (offline re-shard).
enum class FaultPoint : std::size_t {
  kDiskWrite = 0,    ///< checkpoint/manifest write throws (ENOSPC, EIO, ...)
  kTornWrite,        ///< write persists only a prefix (crash mid-write)
  kDiskRead,         ///< checkpoint/manifest read throws
  kCorruptCloud,     ///< NaN/Inf poked into a submitted point cloud
  kCorruptCube,      ///< NaN/Inf poked into a submitted raw radar cube
  kCorruptLabel,     ///< NaN/Inf poked into a submitted ground-truth label
  kLatencySpike,     ///< scheduler stage stalls for spike_ms
  kMigrationKill,    ///< live migration / re-shard killed mid-move
  kTornShardMap,     ///< re-shard journal (shard map) write torn on disk
  kTargetShardCrash, ///< target shard crashes while adopting a session
};
inline constexpr std::size_t kNumFaultPoints = 10;

const char* fault_point_name(FaultPoint p);

struct FaultConfig {
  std::uint64_t seed = 0;
  /// Per-point firing probability in [0, 1]; 0 disables the point.
  std::array<double, kNumFaultPoints> probability{};
  /// Stall injected by a fired kLatencySpike, milliseconds.
  double spike_ms = 2.0;

  double& p(FaultPoint pt) { return probability[static_cast<std::size_t>(pt)]; }
};

#if FUSE_FAULT_INJECT

namespace fault_detail {
struct State {
  std::atomic<bool> enabled{false};
  std::uint64_t seed = 0;
  std::array<double, kNumFaultPoints> probability{};
  double spike_ms = 2.0;
  std::array<std::atomic<std::uint64_t>, kNumFaultPoints> occurrences{};
  std::array<std::atomic<std::uint64_t>, kNumFaultPoints> fired{};
};
State& state();
bool fire_slow(FaultPoint p);
}  // namespace fault_detail

/// Arms the layer with `cfg` and zeroes the occurrence/fired counters.
/// NOT thread-safe against concurrent fault_fire callers — configure
/// before starting the server under test (the same single-writer contract
/// every test honours for ServeConfig).
void fault_configure(const FaultConfig& cfg);

/// Disarms the layer and zeroes all counters (RAII-pair of configure;
/// tests call this in teardown so fault state never leaks across cases).
void fault_reset();

/// True when the layer is armed (one relaxed load; the only cost a
/// production site pays when no chaos test is running).
inline bool fault_active() {
  return fault_detail::state().enabled.load(std::memory_order_relaxed);
}

/// Should this occurrence of `p` inject its failure?  Deterministic per
/// (seed, point, occurrence index); counts occurrences and firings.
inline bool fault_fire(FaultPoint p) {
  if (!fault_active()) return false;
  return fault_detail::fire_slow(p);
}

/// Times the point fired since fault_configure (test assertions).
std::uint64_t fault_fired(FaultPoint p);
/// Times the point was consulted since fault_configure.
std::uint64_t fault_occurrences(FaultPoint p);
/// Configured latency-spike stall in seconds.
double fault_spike_seconds();

#else  // FUSE_FAULT_INJECT == 0: every site folds to dead code.

inline void fault_configure(const FaultConfig&) {}
inline void fault_reset() {}
inline constexpr bool fault_active() { return false; }
inline constexpr bool fault_fire(FaultPoint) { return false; }
inline constexpr std::uint64_t fault_fired(FaultPoint) { return 0; }
inline constexpr std::uint64_t fault_occurrences(FaultPoint) { return 0; }
inline constexpr double fault_spike_seconds() { return 0.0; }

#endif  // FUSE_FAULT_INJECT

/// Scoped arm/disarm for tests: configures on construction, resets on
/// destruction, so an ASSERT failure mid-test cannot leak an armed fault
/// layer into the next test case.
class ScopedFaults {
 public:
  explicit ScopedFaults(const FaultConfig& cfg) { fault_configure(cfg); }
  ~ScopedFaults() { fault_reset(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace fuse::util

#include "data/featurize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace fuse::data {

using fuse::radar::RadarPoint;
using fuse::tensor::Tensor;

namespace {

/// Selects the <= 64 strongest points and orders them spatially
/// (descending z, then ascending x, then ascending y) — the deterministic
/// MARS-style arrangement.  The selection happens in `pts`, which keeps
/// its capacity across calls when owned by a FeaturizeScratch.
void select_points(const fuse::radar::PointCloud& cloud,
                   std::vector<RadarPoint>& pts) {
  pts.assign(cloud.points.begin(), cloud.points.end());
  if (pts.size() > kPointsPerFrame) {
    std::partial_sort(pts.begin(), pts.begin() + kPointsPerFrame, pts.end(),
                      [](const RadarPoint& a, const RadarPoint& b) {
                        return a.intensity > b.intensity;
                      });
    pts.resize(kPointsPerFrame);
  }
  std::sort(pts.begin(), pts.end(),
            [](const RadarPoint& a, const RadarPoint& b) {
              if (a.z != b.z) return a.z > b.z;
              if (a.x != b.x) return a.x < b.x;
              return a.y < b.y;
            });
}

}  // namespace

void Featurizer::fit(const Dataset& dataset, const IndexSet& train_indices) {
  // Channel statistics over all points in the training frames.
  std::array<double, kChannelsPerFrame> sum{}, sum_sq{};
  std::size_t n_points = 0;
  // Label statistics per axis over all joints.
  std::array<double, 3> lsum{}, lsum_sq{};
  std::size_t n_coords = 0;

  for (const std::size_t idx : train_indices) {
    const LabeledFrame& f = dataset.frames.at(idx);
    for (const RadarPoint& p : f.cloud.points) {
      const std::array<float, kChannelsPerFrame> v = {p.x, p.y, p.z,
                                                      p.doppler, p.intensity};
      for (std::size_t c = 0; c < kChannelsPerFrame; ++c) {
        sum[c] += v[c];
        sum_sq[c] += static_cast<double>(v[c]) * v[c];
      }
      ++n_points;
    }
    for (const auto& j : f.label.joints) {
      const std::array<float, 3> v = {j.x, j.y, j.z};
      for (std::size_t a = 0; a < 3; ++a) {
        lsum[a] += v[a];
        lsum_sq[a] += static_cast<double>(v[a]) * v[a];
      }
      ++n_coords;
    }
  }
  if (n_points == 0 || n_coords == 0)
    throw std::invalid_argument("Featurizer::fit: empty training set");

  for (std::size_t c = 0; c < kChannelsPerFrame; ++c) {
    const double mean = sum[c] / static_cast<double>(n_points);
    const double var =
        std::max(1e-8, sum_sq[c] / static_cast<double>(n_points) -
                           mean * mean);
    channel_stats_.mean[c] = static_cast<float>(mean);
    channel_stats_.stddev[c] = static_cast<float>(std::sqrt(var));
  }
  for (std::size_t a = 0; a < 3; ++a) {
    const double mean = lsum[a] / static_cast<double>(n_coords);
    const double var =
        std::max(1e-8, lsum_sq[a] / static_cast<double>(n_coords) -
                           mean * mean);
    label_stats_.mean[a] = static_cast<float>(mean);
    label_stats_.stddev[a] = static_cast<float>(std::sqrt(var));
  }
}

void Featurizer::frame_block(const fuse::radar::PointCloud& cloud,
                             float* out) const {
  FeaturizeScratch scratch;
  frame_block(cloud, out, scratch);
}

void Featurizer::frame_block(const fuse::radar::PointCloud& cloud, float* out,
                             FeaturizeScratch& scratch) const {
  select_points(cloud, scratch.points);
  const auto& pts = scratch.points;
  // Channel-major layout: out[c][h][w]; padded slots stay zero (zero is the
  // normalized mean, i.e. "no information").
  std::fill(out, out + kChannelsPerFrame * kPointsPerFrame, 0.0f);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const RadarPoint& p = pts[i];
    const std::array<float, kChannelsPerFrame> v = {p.x, p.y, p.z, p.doppler,
                                                    p.intensity};
    for (std::size_t c = 0; c < kChannelsPerFrame; ++c) {
      out[c * kPointsPerFrame + i] =
          (v[c] - channel_stats_.mean[c]) / channel_stats_.stddev[c];
    }
  }
}

Tensor Featurizer::make_inputs(const FusedDataset& fused,
                               const IndexSet& sample_indices) const {
  const std::size_t n = sample_indices.size();
  Tensor x({n, kChannelsPerFrame, kGridH, kGridW});
  const std::size_t block_size = kChannelsPerFrame * kPointsPerFrame;

  fuse::util::parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    FeaturizeScratch scratch;  // per-chunk: recycled across the chunk's rows
    for (std::size_t i = lo; i < hi; ++i) {
      const auto pool = fused.fused_cloud(sample_indices[i]);
      frame_block(pool, x.data() + i * block_size, scratch);
    }
  }, 16);
  return x;
}

Tensor Featurizer::make_labels(const FusedDataset& fused,
                               const IndexSet& sample_indices) const {
  const std::size_t n = sample_indices.size();
  Tensor y({n, fuse::human::kNumCoords});
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = normalize_pose(fused.centre_frame(sample_indices[i]).label);
    std::copy(v.begin(), v.end(), y.data() + i * fuse::human::kNumCoords);
  }
  return y;
}

std::array<float, fuse::human::kNumCoords>
Featurizer::normalize_pose(const fuse::human::Pose& pose) const {
  std::array<float, fuse::human::kNumCoords> out{};
  for (std::size_t j = 0; j < fuse::human::kNumJoints; ++j) {
    const auto& p = pose.joints[j];
    out[j * 3 + 0] = (p.x - label_stats_.mean[0]) / label_stats_.stddev[0];
    out[j * 3 + 1] = (p.y - label_stats_.mean[1]) / label_stats_.stddev[1];
    out[j * 3 + 2] = (p.z - label_stats_.mean[2]) / label_stats_.stddev[2];
  }
  return out;
}

Tensor Featurizer::denormalize_labels(const Tensor& y) const {
  Tensor out = y;
  const std::size_t n = y.dim(0);
  for (std::size_t i = 0; i < n; ++i) {
    float* row = out.data() + i * fuse::human::kNumCoords;
    for (std::size_t j = 0; j < fuse::human::kNumJoints; ++j) {
      for (std::size_t a = 0; a < 3; ++a) {
        row[j * 3 + a] =
            row[j * 3 + a] * label_stats_.stddev[a] + label_stats_.mean[a];
      }
    }
  }
  return out;
}

std::array<double, 3> mae_per_axis_m(const Tensor& pred, const Tensor& target,
                                     const LabelStats& stats) {
  fuse::tensor::check_same_shape(pred, target, "mae_per_axis_m");
  const std::size_t n = pred.dim(0);
  std::array<double, 3> acc{};
  for (std::size_t i = 0; i < n; ++i) {
    const float* p = pred.data() + i * fuse::human::kNumCoords;
    const float* t = target.data() + i * fuse::human::kNumCoords;
    for (std::size_t j = 0; j < fuse::human::kNumJoints; ++j)
      for (std::size_t a = 0; a < 3; ++a)
        acc[a] += std::fabs(static_cast<double>(p[j * 3 + a]) -
                            t[j * 3 + a]) *
                  stats.stddev[a];
  }
  const double denom =
      static_cast<double>(n) * static_cast<double>(fuse::human::kNumJoints);
  for (auto& v : acc) v /= std::max(1.0, denom);
  return acc;
}

}  // namespace fuse::data

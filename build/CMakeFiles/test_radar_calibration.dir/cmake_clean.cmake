file(REMOVE_RECURSE
  "CMakeFiles/test_radar_calibration.dir/tests/test_radar_calibration.cpp.o"
  "CMakeFiles/test_radar_calibration.dir/tests/test_radar_calibration.cpp.o.d"
  "test_radar_calibration"
  "test_radar_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radar_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "nn/quant.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>

#include "nn/layers.h"
#include "nn/sequential.h"

namespace fuse::nn {

namespace {

constexpr char kMagic[8] = {'F', 'U', 'S', 'E', 'Q', 'N', 'T', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("QuantParams::load: truncated stream");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint64_t len = read_u64(is);
  if (len > 4096)
    throw std::runtime_error("QuantParams::load: corrupt string length");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("QuantParams::load: truncated stream");
  return s;
}

void write_floats(std::ostream& os, const std::vector<float>& v) {
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_floats(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n > (1u << 24))
    throw std::runtime_error("QuantParams::load: corrupt vector length");
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw std::runtime_error("QuantParams::load: truncated stream");
  return v;
}

/// A quantizable layer found by the forward-order walk; exactly one of
/// conv/linear is non-null.
struct QLayer {
  std::string name;
  Conv2d* conv = nullptr;
  Linear* linear = nullptr;
};

/// Collects quantizable layers in forward order.  Sequential containers
/// recurse; anything else is either a quantizable leaf or skipped.
void collect_layers(Module& m, std::vector<QLayer>& out) {
  if (auto* seq = dynamic_cast<Sequential*>(&m)) {
    for (std::size_t i = 0; i < seq->size(); ++i)
      collect_layers(seq->child(i), out);
    return;
  }
  QLayer ql;
  ql.conv = dynamic_cast<Conv2d*>(&m);
  ql.linear = dynamic_cast<Linear*>(&m);
  if (!ql.conv && !ql.linear) return;
  ql.name = std::to_string(out.size()) + ":" + m.arch_name();
  out.push_back(ql);
}

/// Read-only variant for const contexts (is_quantized).
struct ConstQLayer {
  const Conv2d* conv = nullptr;
  const Linear* linear = nullptr;
};

void collect_layers(const Module& m, std::vector<ConstQLayer>& out) {
  if (const auto* seq = dynamic_cast<const Sequential*>(&m)) {
    for (std::size_t i = 0; i < seq->size(); ++i)
      collect_layers(seq->child(i), out);
    return;
  }
  ConstQLayer ql;
  ql.conv = dynamic_cast<const Conv2d*>(&m);
  ql.linear = dynamic_cast<const Linear*>(&m);
  if (ql.conv || ql.linear) out.push_back(ql);
}

/// Per-channel [min, max] of a batch: channel = dim 1 for 4-D activations,
/// a single whole-tensor range for 2-D ones (a per-feature range for fc1's
/// 2048 features would bloat the blob without changing the derived
/// per-tensor scale).
void observe_ranges(const Tensor& x, std::vector<float>& mins,
                    std::vector<float>& maxs) {
  const std::size_t channels = x.ndim() == 4 ? x.dim(1) : 1;
  mins.assign(channels, std::numeric_limits<float>::max());
  maxs.assign(channels, std::numeric_limits<float>::lowest());
  if (x.ndim() == 4) {
    const std::size_t hw = x.dim(2) * x.dim(3);
    for (std::size_t nidx = 0; nidx < x.dim(0); ++nidx)
      for (std::size_t c = 0; c < channels; ++c) {
        const float* p = x.data() + (nidx * channels + c) * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          mins[c] = std::min(mins[c], p[i]);
          maxs[c] = std::max(maxs[c], p[i]);
        }
      }
  } else {
    for (std::size_t i = 0; i < x.numel(); ++i) {
      mins[0] = std::min(mins[0], x[i]);
      maxs[0] = std::max(maxs[0], x[i]);
    }
  }
}

std::vector<float> weight_absmax(const Tensor& w) {
  std::vector<float> out(w.dim(0), 0.0f);
  const std::size_t cols = w.dim(1);
  for (std::size_t r = 0; r < w.dim(0); ++r) {
    const float* row = w.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c)
      out[r] = std::max(out[r], std::fabs(row[c]));
  }
  return out;
}

/// Builds and attaches one layer's int8 state from its blob entry.
void attach_state(const QLayer& ql, const QuantParams::Layer& entry) {
  Tensor& w = ql.conv ? ql.conv->weight() : ql.linear->weight();
  auto qs = std::make_shared<QuantState>();
  qs->w_scales.resize(entry.w_absmax.size());
  for (std::size_t r = 0; r < entry.w_absmax.size(); ++r)
    qs->w_scales[r] = entry.w_absmax[r] / 127.0f;
  fuse::tensor::quantize_per_channel_with_scales(w, qs->w_scales, qs->qw,
                                                 qs->w_row_sums);
  float lo = 0.0f, hi = 0.0f;
  for (const float v : entry.act_min) lo = std::min(lo, v);
  for (const float v : entry.act_max) hi = std::max(hi, v);
  qs->act = fuse::tensor::affine_from_range(lo, hi);
  if (ql.conv)
    ql.conv->set_quant_state(std::move(qs));
  else
    ql.linear->set_quant_state(std::move(qs));
}

/// The fp32 observation pass: thread the calibration batch through the
/// children in inference order, recording every quantizable layer's input
/// range before computing its (kGemm) output.
Tensor observe(Module& m, Tensor h, std::vector<QuantParams::Layer>& layers) {
  if (auto* seq = dynamic_cast<Sequential*>(&m)) {
    for (std::size_t i = 0; i < seq->size(); ++i)
      h = observe(seq->child(i), std::move(h), layers);
    return h;
  }
  if (dynamic_cast<Conv2d*>(&m) != nullptr ||
      dynamic_cast<Linear*>(&m) != nullptr) {
    QuantParams::Layer entry;
    entry.name = std::to_string(layers.size()) + ":" + m.arch_name();
    observe_ranges(h, entry.act_min, entry.act_max);
    Tensor* w = m.params().at(0);
    entry.w_absmax = weight_absmax(*w);
    layers.push_back(std::move(entry));
  }
  return m.infer(h, Backend::kGemm);
}

}  // namespace

void QuantParams::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  write_string(os, arch);
  write_u64(os, layers.size());
  for (const Layer& l : layers) {
    write_string(os, l.name);
    write_floats(os, l.w_absmax);
    write_floats(os, l.act_min);
    write_floats(os, l.act_max);
  }
}

QuantParams QuantParams::load(std::istream& is) {
  char magic[sizeof(kMagic)] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::string(magic, sizeof(magic)) !=
                 std::string(kMagic, sizeof(kMagic)))
    throw std::runtime_error("QuantParams::load: not a FUSE quant stream");
  QuantParams qp;
  qp.arch = read_string(is);
  const std::uint64_t count = read_u64(is);
  if (count > 4096)
    throw std::runtime_error("QuantParams::load: corrupt layer count");
  qp.layers.resize(count);
  for (Layer& l : qp.layers) {
    l.name = read_string(is);
    l.w_absmax = read_floats(is);
    l.act_min = read_floats(is);
    l.act_max = read_floats(is);
    if (l.act_min.size() != l.act_max.size())
      throw std::runtime_error("QuantParams::load: corrupt range vectors");
  }
  return qp;
}

void QuantParams::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os)
    throw std::runtime_error("QuantParams::save_file: cannot open " + path);
  save(os);
}

QuantParams QuantParams::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw std::runtime_error("QuantParams::load_file: cannot open " + path);
  return load(is);
}

QuantParams calibrate(Module& model, const Tensor& data) {
  QuantParams qp;
  qp.arch = model.arch_name();
  (void)observe(model, data, qp.layers);
  apply_quant_params(model, qp);
  return qp;
}

void apply_quant_params(Module& model, const QuantParams& qp) {
  if (qp.arch != model.arch_name())
    throw std::runtime_error("apply_quant_params: architecture mismatch ('" +
                             qp.arch + "' vs '" + model.arch_name() + "')");
  std::vector<QLayer> layers;
  collect_layers(model, layers);
  if (layers.size() != qp.layers.size())
    throw std::runtime_error(
        "apply_quant_params: quantizable layer count mismatch");
  // Validate every layer before attaching any state, so a mismatch throws
  // without leaving the model half-quantized.
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const QuantParams::Layer& entry = qp.layers[i];
    if (layers[i].name != entry.name)
      throw std::runtime_error("apply_quant_params: layer mismatch (" +
                               layers[i].name + " vs " + entry.name + ")");
    const Tensor& w =
        layers[i].conv ? layers[i].conv->weight() : layers[i].linear->weight();
    if (w.ndim() != 2 || w.dim(0) != entry.w_absmax.size())
      throw std::runtime_error(
          "apply_quant_params: channel count mismatch at " + entry.name);
    // The blob's weight ranges are part of the calibration contract: they
    // must describe THESE weights.  A blob calibrated on a different
    // checkpoint (fine-tuned since, different seed) silently produces
    // clipped/underscaled int8 weights, so it throws instead.
    const auto cur = weight_absmax(w);
    for (std::size_t r = 0; r < cur.size(); ++r) {
      const float ref = entry.w_absmax[r];
      if (std::fabs(cur[r] - ref) > 1e-4f * std::max(1.0f, ref))
        throw std::runtime_error(
            "apply_quant_params: weight range mismatch at " + entry.name +
            " (QuantParams were calibrated on a different checkpoint)");
    }
  }
  for (std::size_t i = 0; i < layers.size(); ++i)
    attach_state(layers[i], qp.layers[i]);
}

bool is_quantized(const Module& model) {
  std::vector<ConstQLayer> layers;
  collect_layers(model, layers);
  if (layers.empty()) return false;
  for (const ConstQLayer& ql : layers) {
    const QuantState* qs =
        ql.conv ? ql.conv->quant_state() : ql.linear->quant_state();
    if (qs == nullptr) return false;
  }
  return true;
}

void clear_quantization(Module& model) {
  std::vector<QLayer> layers;
  collect_layers(model, layers);
  for (const QLayer& ql : layers) {
    if (ql.conv)
      ql.conv->set_quant_state(nullptr);
    else
      ql.linear->set_quant_state(nullptr);
  }
}

}  // namespace fuse::nn

#pragma once
// Shared machinery for the paper-reproduction benches.
//
// The adaptation experiments (Figures 3-4, Table 2) share an expensive
// preparation phase: synthesize the dataset, apply the leave-out split,
// train the supervised baseline and meta-train FUSE.  AdaptationLab runs
// that phase once and caches the trained models on disk (keyed by
// configuration), so fig3, fig4 and table2 binaries can each run standalone
// yet reuse each other's work when run in sequence.

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "core/finetune.h"
#include "core/meta.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/builder.h"
#include "data/featurize.h"
#include "data/fusion.h"
#include "data/split.h"
#include "nn/module.h"
#include "nn/registry.h"
#include "radar/scene.h"
#include "util/cli.h"
#include "util/rng.h"

namespace fuse::bench {

/// A compact multi-target scene (torso + limbs worth of scatterers at
/// 1.5-3 m with mixed radial velocities): cheap to simulate, busy enough
/// that CFAR yields a realistic detection load.  Shared by the DSP and
/// serving benches so their cube workloads stay identical — the CI
/// regression gate compares detection counts derived from these scenes.
inline fuse::radar::Scene make_bench_scene(fuse::util::Rng& rng,
                                           std::size_t n_scatterers = 24) {
  fuse::radar::Scene scene;
  for (std::size_t i = 0; i < n_scatterers; ++i) {
    fuse::radar::Scatterer s;
    s.position = {rng.uniformf(-0.6f, 0.6f), rng.uniformf(1.5f, 3.0f),
                  rng.uniformf(-0.8f, 0.8f)};
    s.velocity = {0.0f, rng.uniformf(-1.2f, 1.2f), rng.uniformf(-0.4f, 0.4f)};
    s.rcs = rng.uniformf(0.002f, 0.02f);
    scene.push_back(s);
  }
  return scene;
}

/// Sizing for the adaptation experiments; all counts scale with the --scale
/// flag, --paper selects the full paper configuration.
struct AdaptationConfig {
  std::size_t frames_per_sequence = 250;  ///< paper: 1000
  std::size_t fusion_m = 1;               ///< the paper fuses 3 frames
  std::size_t baseline_epochs = 25;       ///< paper: 150
  /// Supervised warm-up before meta-training.  The paper meta-trains from
  /// scratch for 20,000 iterations; at CPU scale we reach an equivalent
  /// starting point with a short supervised phase followed by FOMAML
  /// iterations that shape the parameters for adaptability.  --paper sets
  /// this to 0 and runs the full 20k iterations.
  std::size_t meta_warmup_epochs = 8;
  std::size_t meta_iterations = 500;      ///< paper: 20000
  std::size_t meta_tasks = 6;             ///< paper: 32
  std::size_t meta_task_frames = 128;     ///< paper: 1000
  std::size_t finetune_frames = 200;      ///< paper: 200
  std::size_t finetune_epochs = 50;       ///< paper: 50
  std::size_t original_eval_cap = 1000;   ///< subsample of D_train for speed
  /// Architecture built through nn::build_model (--model=...); the whole
  /// lab is architecture-agnostic.
  std::string model_name = "mars_cnn";
  std::uint64_t seed = 0x22050097ULL;
  /// Update rule for FUSE's online fine-tuning: true replays the MAML
  /// inner SGD at alpha (MAML-PyTorch's "finetunning"), false uses the same
  /// Adam procedure as the baseline.
  bool fuse_sgd_finetune = true;

  static AdaptationConfig from_cli(const fuse::util::Cli& cli);
  /// Stable cache key for the trained-model files.
  std::string cache_tag() const;
};

/// Everything the adaptation benches need, prepared once.
class AdaptationLab {
 public:
  AdaptationLab(const AdaptationConfig& cfg, std::string out_dir);

  /// Trains (or loads from cache) the supervised baseline on the leave-out
  /// training pool.
  fuse::nn::Module& baseline();
  /// Meta-trains (or loads) the FUSE model on the same pool.
  fuse::nn::Module& fuse_model();

  /// Runs one fine-tuning regime for both models; returns {baseline, fuse}.
  std::pair<fuse::core::FineTuneCurve, fuse::core::FineTuneCurve>
  run_finetune(bool last_layer_only);

  const fuse::data::Dataset& dataset() const { return dataset_; }
  const fuse::data::FusedDataset& fused() const { return *fused_; }
  const fuse::data::Featurizer& featurizer() const { return feat_; }
  const fuse::data::LeaveOutSplit& split() const { return split_; }
  const AdaptationConfig& config() const { return cfg_; }

  /// Writes a fine-tune curve pair as CSV (epoch, baseline_new, fuse_new,
  /// baseline_orig, fuse_orig).
  void write_curves_csv(const std::string& path,
                        const fuse::core::FineTuneCurve& baseline,
                        const fuse::core::FineTuneCurve& fuse_curve) const;

 private:
  std::unique_ptr<fuse::nn::Module> make_model(std::uint64_t seed);
  bool try_load(fuse::nn::Module& model, const std::string& name) const;
  void store(const fuse::nn::Module& model, const std::string& name) const;

  AdaptationConfig cfg_;
  std::string out_dir_;
  fuse::data::Dataset dataset_;
  std::unique_ptr<fuse::data::FusedDataset> fused_;
  fuse::data::Featurizer feat_;
  fuse::data::LeaveOutSplit split_;
  fuse::data::IndexSet finetune_set_, eval_new_, eval_original_;
  std::unique_ptr<fuse::nn::Module> baseline_, fuse_;
};

/// Formats a MAE curve entry (cm) for console tables.
std::string fmt_cm(double v);

}  // namespace fuse::bench

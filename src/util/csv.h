#pragma once
// Small CSV writer used to dump experiment curves (e.g. MAE-vs-epoch series
// behind Figures 3 and 4) next to the console output so they can be plotted.

#include <fstream>
#include <string>
#include <vector>

namespace fuse::util {

class CsvWriter {
 public:
  /// Opens (truncates) path.  ok() reports whether the stream is usable;
  /// writes to a bad stream are silently dropped (benches still print to
  /// stdout, the CSV is a convenience artifact).
  explicit CsvWriter(const std::string& path) : out_(path) {}

  bool ok() const { return out_.good(); }

  void write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out_ << ',';
      out_ << cells[i];
    }
    out_ << '\n';
  }

  template <typename... Args>
  void row(const Args&... args) {
    bool first = true;
    ((out_ << (first ? (first = false, "") : ",") << args), ...);
    out_ << '\n';
  }

 private:
  std::ofstream out_;
};

}  // namespace fuse::util

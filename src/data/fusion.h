#pragma once
// Multi-frame point-cloud fusion — the paper's first contribution (Eq. 3).
//
// The fused sample F[k] concatenates the point clouds of frames
// k-M .. k+M of the same sequence; the label stays the centre frame's
// pose.  At sequence boundaries the window is clamped (edge frames are
// repeated) so every frame of the dataset yields a fused sample and the
// split sizes are independent of M.

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace fuse::data {

/// One fused sample: the centre frame plus the (2M+1) constituent frame
/// indices, oldest first.
struct FusedSample {
  std::size_t centre = 0;
  std::vector<std::size_t> constituents;  ///< size 2M+1, clamped at edges
};

/// View over a dataset with fusion window M (M = 0 reduces to single-frame).
class FusedDataset {
 public:
  FusedDataset(const Dataset& dataset, std::size_t m);

  const Dataset& dataset() const { return *dataset_; }
  std::size_t fusion_m() const { return m_; }
  std::size_t frames_per_sample() const { return 2 * m_ + 1; }
  std::size_t size() const { return samples_.size(); }

  const FusedSample& sample(std::size_t i) const { return samples_[i]; }
  const LabeledFrame& centre_frame(std::size_t i) const {
    return dataset_->frames[samples_[i].centre];
  }

  /// Total number of points across the constituents of sample i.
  std::size_t fused_point_count(std::size_t i) const;

  /// Concatenated point cloud of sample i (for visualisation / metrics).
  fuse::radar::PointCloud fused_cloud(std::size_t i) const;

 private:
  const Dataset* dataset_;
  std::size_t m_;
  std::vector<FusedSample> samples_;
};

}  // namespace fuse::data

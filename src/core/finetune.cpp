#include "core/finetune.h"

#include <algorithm>

#include "nn/loss.h"
#include "nn/optim.h"
#include "util/log.h"

namespace fuse::core {

using fuse::data::IndexSet;

float sgd_step(fuse::nn::Module& model, const fuse::tensor::Tensor& x,
               const fuse::tensor::Tensor& y, float lr, float grad_clip) {
  const auto pred = model.forward(x);
  fuse::nn::Tensor dpred;
  const float loss = fuse::nn::l1_loss(pred, y, &dpred);
  model.zero_grad();
  model.backward(dpred);
  const auto grads = model.grads();
  if (grad_clip > 0.0f) fuse::nn::clip_grad_norm(grads, grad_clip);
  fuse::nn::Sgd(lr).step(model.params(), grads);
  return loss;
}

FineTuneCurve fine_tune(fuse::nn::Module& model,
                        const fuse::data::FusedDataset& fused,
                        const fuse::data::Featurizer& feat,
                        const IndexSet& finetune_indices,
                        const IndexSet& eval_new,
                        const IndexSet& eval_original,
                        const FineTuneConfig& cfg) {
  FineTuneCurve curve;
  curve.new_data_cm.reserve(cfg.epochs + 1);
  curve.original_cm.reserve(cfg.epochs + 1);

  auto record = [&] {
    curve.new_data_cm.push_back(
        evaluate(model, fused, feat, eval_new, cfg.eval_batch).average());
    curve.original_cm.push_back(
        evaluate(model, fused, feat, eval_original, cfg.eval_batch)
            .average());
  };
  record();  // epoch 0: before fine-tuning

  const auto params =
      cfg.last_layer_only ? model.last_layer_params() : model.params();
  const auto grads =
      cfg.last_layer_only ? model.last_layer_grads() : model.grads();
  fuse::nn::Sgd sgd(cfg.lr);
  fuse::nn::Adam adam(cfg.adam_lr);
  fuse::util::Rng rng(cfg.seed);

  IndexSet indices = finetune_indices;
  for (std::size_t e = 0; e < cfg.epochs; ++e) {
    rng.shuffle(indices);
    for (std::size_t pos = 0; pos < indices.size(); pos += cfg.batch_size) {
      const std::size_t hi = std::min(indices.size(), pos + cfg.batch_size);
      const IndexSet batch(
          indices.begin() + static_cast<std::ptrdiff_t>(pos),
          indices.begin() + static_cast<std::ptrdiff_t>(hi));
      const auto x = feat.make_inputs(fused, batch);
      const auto y = feat.make_labels(fused, batch);
      const auto pred = model.forward(x);
      fuse::nn::Tensor dpred;
      (void)fuse::nn::l1_loss(pred, y, &dpred);
      model.zero_grad();
      model.backward(dpred);
      if (cfg.grad_clip > 0.0f)
        fuse::nn::clip_grad_norm(grads, cfg.grad_clip);
      if (cfg.use_sgd) {
        sgd.step(params, grads);
      } else {
        adam.step(params, grads);
      }
    }
    record();
  }
  return curve;
}

}  // namespace fuse::core

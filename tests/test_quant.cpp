// Tests for the int8 quantized inference backend: per-channel round-trip
// error bounds, int8-vs-fp32 GEMM agreement within derived tolerances
// (including ragged tile tails), the calibration contract (save/load
// round-trip, mismatch throws), the fp32 fallback for unquantized modules,
// and clone semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "nn/layers.h"
#include "nn/quant.h"
#include "nn/registry.h"
#include "tensor/quant.h"
#include "util/rng.h"

namespace {

using fuse::nn::Backend;
using fuse::nn::QuantParams;
using fuse::tensor::AffineParams;
using fuse::tensor::Tensor;

Tensor random_tensor(fuse::tensor::Shape shape, fuse::util::Rng& rng,
                     float lo = -1.0f, float hi = 1.0f) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.uniformf(lo, hi);
  return t;
}

// --------------------------------------------------------- primitives --

TEST(Quant, PerChannelRoundTripErrorBound) {
  fuse::util::Rng rng(11);
  // Rows with very different magnitudes: per-channel scales must keep the
  // error of the small-magnitude rows proportional to THEIR absmax.
  Tensor w({4, 33});
  for (std::size_t c = 0; c < 33; ++c) {
    w.at(0, c) = rng.uniformf(-100.0f, 100.0f);
    w.at(1, c) = rng.uniformf(-1.0f, 1.0f);
    w.at(2, c) = rng.uniformf(-0.01f, 0.01f);
    w.at(3, c) = 0.0f;  // all-zero channel must not divide by zero
  }
  std::vector<float> scales;
  std::vector<std::int8_t> q;
  std::vector<std::int32_t> row_sums;
  fuse::tensor::quantize_per_channel(w, scales, q, row_sums);
  const Tensor back = fuse::tensor::dequantize_per_channel(q, w.shape(),
                                                           scales);
  for (std::size_t r = 0; r < 4; ++r) {
    // Symmetric rounding: |w - dq| <= scale/2 per element.
    const float bound = scales[r] * 0.5f + 1e-7f;
    for (std::size_t c = 0; c < 33; ++c)
      EXPECT_LE(std::fabs(w.at(r, c) - back.at(r, c)), bound)
          << "row " << r << " col " << c;
    // And the row sums really are the sums of the quantized row.
    std::int32_t sum = 0;
    for (std::size_t c = 0; c < 33; ++c) sum += q[r * 33 + c];
    EXPECT_EQ(sum, row_sums[r]);
  }
  EXPECT_EQ(scales[3], 0.0f);
}

TEST(Quant, AffineQuantizesZeroExactly) {
  // Zero must survive the round trip exactly: conv padding and ReLU
  // outputs are exact zeros and the zero-point correction assumes q(0)=zp.
  for (const auto& [lo, hi] : {std::pair<float, float>{-3.0f, 5.0f},
                               {0.0f, 7.5f},
                               {-2.0f, 0.0f}}) {
    const AffineParams p = fuse::tensor::affine_from_range(lo, hi);
    const float zero = 0.0f;
    std::int8_t q = 0;
    fuse::tensor::quantize_affine(&zero, 1, p, &q);
    EXPECT_EQ(static_cast<std::int32_t>(q), p.zp) << lo << ".." << hi;
    EXPECT_FLOAT_EQ((q - p.zp) * p.scale, 0.0f);
  }
}

TEST(Quant, Int8GemmMatchesFp32WithinDerivedTolerance) {
  fuse::util::Rng rng(12);
  // Odd sizes exercise the non-multiple-of-tile tails of the kernel.
  for (const auto& [m, k, n] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{5, 37, 9},
        {1, 1, 1}, {4, 64, 16}, {7, 129, 33}}) {
    const Tensor a = random_tensor({m, k}, rng, -2.0f, 3.0f);
    const Tensor b = random_tensor({n, k}, rng);

    // Quantize: a affine (activations), b per-channel symmetric (weights).
    float lo = a[0], hi = a[0];
    for (std::size_t i = 0; i < a.numel(); ++i) {
      lo = std::min(lo, a[i]);
      hi = std::max(hi, a[i]);
    }
    const AffineParams pa = fuse::tensor::affine_from_range(lo, hi);
    std::vector<std::int8_t> qa(m * k);
    fuse::tensor::quantize_affine(a.data(), m * k, pa, qa.data());
    std::vector<float> sb;
    std::vector<std::int8_t> qb;
    std::vector<std::int32_t> row_sums;
    fuse::tensor::quantize_per_channel(b, sb, qb, row_sums);

    std::vector<std::int32_t> acc(m * n);
    fuse::tensor::gemm_s8s8s32_nt(qa.data(), qb.data(), acc.data(), m, k, n);

    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double ref = 0.0, amax = 0.0, bmax = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk) {
          ref += static_cast<double>(a.at(i, kk)) * b.at(j, kk);
          amax = std::max(amax, std::fabs(static_cast<double>(a.at(i, kk))));
          bmax = std::max(bmax, std::fabs(static_cast<double>(b.at(j, kk))));
        }
        const double got =
            sb[j] * pa.scale *
            static_cast<double>(acc[i * n + j] - pa.zp * row_sums[j]);
        // Per-term error: |a·b − â·b̂| ≤ |a||b−b̂| + |b̂||a−â|
        //                 ≤ amax·sb/2 + (bmax + sb/2)·sa/2, summed over K.
        const double tol =
            static_cast<double>(k) *
                (amax * sb[j] * 0.5 +
                 (bmax + sb[j] * 0.5) * pa.scale * 0.5) +
            1e-6;
        EXPECT_NEAR(got, ref, tol)
            << m << "x" << k << "x" << n << " at (" << i << "," << j << ")";
      }
  }
}

// ------------------------------------------------------------- layers --

TEST(Quant, Conv2dInt8MatchesGemmOnRaggedShapes) {
  fuse::util::Rng rng(13);
  for (const auto& [cin, cout, hw] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{3, 5, 7},
        {1, 1, 8}, {2, 34, 5}, {5, 16, 8}}) {
    fuse::nn::Conv2d conv(cin, cout, 3, 1, rng);
    const Tensor x = random_tensor({5, cin, hw, hw}, rng, -1.5f, 1.5f);
    (void)fuse::nn::calibrate(conv, x);
    ASSERT_TRUE(fuse::nn::is_quantized(conv));
    const Tensor ref = conv.infer(x, Backend::kGemm);
    const Tensor got = conv.infer(x, Backend::kInt8);
    ASSERT_EQ(ref.shape(), got.shape());
    // 8-bit weights and activations on O(1)-magnitude data: the per-pixel
    // error stays well under 2% of the output dynamic range.
    const float range = ref.max() - ref.min();
    double max_err = 0.0;
    for (std::size_t i = 0; i < ref.numel(); ++i)
      max_err = std::max(max_err,
                         std::fabs(static_cast<double>(ref[i]) - got[i]));
    EXPECT_LE(max_err, 0.02 * range + 1e-3)
        << cin << "x" << cout << "@" << hw;
  }
}

TEST(Quant, UnquantizedModuleFallsBackToGemmBitExactly) {
  fuse::util::Rng rng(14);
  for (const auto& name : fuse::nn::registered_models()) {
    const auto model = fuse::nn::build_model(name, {.seed = 15});
    EXPECT_FALSE(fuse::nn::is_quantized(*model)) << name;
    const Tensor x = random_tensor({3, 5, 8, 8}, rng);
    const Tensor gemm = model->infer(x, Backend::kGemm);
    const Tensor int8 = model->infer(x, Backend::kInt8);
    ASSERT_EQ(gemm.shape(), int8.shape()) << name;
    for (std::size_t i = 0; i < gemm.numel(); ++i)
      ASSERT_EQ(gemm[i], int8[i]) << name << " element " << i;
  }
}

TEST(Quant, MarsCnnInt8CloseToFp32EndToEnd) {
  fuse::util::Rng rng(16);
  const auto model = fuse::nn::build_model("mars_cnn", {.seed = 17});
  const Tensor calib = random_tensor({16, 5, 8, 8}, rng, -2.0f, 2.0f);
  (void)fuse::nn::calibrate(*model, calib);
  ASSERT_TRUE(fuse::nn::is_quantized(*model));
  // Evaluate on data the calibration never saw (same distribution).
  const Tensor x = random_tensor({8, 5, 8, 8}, rng, -2.0f, 2.0f);
  const Tensor ref = model->infer(x, Backend::kGemm);
  const Tensor got = model->infer(x, Backend::kInt8);
  double mae = 0.0, mag = 0.0;
  for (std::size_t i = 0; i < ref.numel(); ++i) {
    mae += std::fabs(static_cast<double>(ref[i]) - got[i]);
    mag += std::fabs(static_cast<double>(ref[i]));
  }
  mae /= static_cast<double>(ref.numel());
  mag /= static_cast<double>(ref.numel());
  EXPECT_LE(mae, 0.05 * mag) << "mae " << mae << " vs mean |y| " << mag;
}

// -------------------------------------------------- calibration contract --

TEST(Quant, QuantParamsSaveLoadRoundTripReproducesInt8Exactly) {
  fuse::util::Rng rng(18);
  const Tensor calib = random_tensor({12, 5, 8, 8}, rng, -2.0f, 2.0f);
  const Tensor x = random_tensor({4, 5, 8, 8}, rng, -2.0f, 2.0f);

  const auto a = fuse::nn::build_model("mars_cnn", {.seed = 19});
  const QuantParams qp = fuse::nn::calibrate(*a, calib);
  EXPECT_EQ(qp.arch, "mars_cnn");
  EXPECT_EQ(qp.layers.size(), 4u);  // conv1, conv2, fc1, fc2
  const Tensor ya = a->infer(x, Backend::kInt8);

  std::stringstream ss;
  qp.save(ss);
  const QuantParams loaded = QuantParams::load(ss);

  // Same checkpoint in a fresh process: same seed, blob applied from disk.
  const auto b = fuse::nn::build_model("mars_cnn", {.seed = 19});
  fuse::nn::apply_quant_params(*b, loaded);
  ASSERT_TRUE(fuse::nn::is_quantized(*b));
  const Tensor yb = b->infer(x, Backend::kInt8);
  for (std::size_t i = 0; i < ya.numel(); ++i)
    ASSERT_EQ(ya[i], yb[i]) << "element " << i;
}

TEST(Quant, MismatchedQuantParamsThrow) {
  fuse::util::Rng rng(20);
  const Tensor calib = random_tensor({8, 5, 8, 8}, rng);
  const auto cnn = fuse::nn::build_model("mars_cnn", {.seed = 21});
  const QuantParams qp = fuse::nn::calibrate(*cnn, calib);

  // Different architecture: tag mismatch.
  const auto mlp = fuse::nn::build_model("mars_mlp", {.seed = 21});
  EXPECT_THROW(fuse::nn::apply_quant_params(*mlp, qp), std::runtime_error);

  // Same architecture, different checkpoint: weight-range mismatch.
  const auto other = fuse::nn::build_model("mars_cnn", {.seed = 22});
  EXPECT_THROW(fuse::nn::apply_quant_params(*other, qp), std::runtime_error);

  // Garbage / truncated streams throw instead of misloading.
  std::stringstream garbage("not a quant blob");
  EXPECT_THROW(QuantParams::load(garbage), std::runtime_error);
  std::stringstream ss;
  qp.save(ss);
  std::stringstream truncated(ss.str().substr(0, ss.str().size() / 2));
  EXPECT_THROW(QuantParams::load(truncated), std::runtime_error);
}

TEST(Quant, CloneDropsQuantStateAndServesFp32) {
  fuse::util::Rng rng(23);
  const Tensor calib = random_tensor({8, 5, 8, 8}, rng);
  const auto model = fuse::nn::build_model("mars_cnn", {.seed = 24});
  (void)fuse::nn::calibrate(*model, calib);
  ASSERT_TRUE(fuse::nn::is_quantized(*model));

  // The per-user adaptation path: clone, mutate parameters, serve.  The
  // clone must not carry int8 state quantized from the parent's weights.
  const auto clone = model->clone();
  EXPECT_FALSE(fuse::nn::is_quantized(*clone));
  (*clone->params()[0])[0] += 0.5f;
  const Tensor x = random_tensor({2, 5, 8, 8}, rng);
  const Tensor via_int8 = clone->infer(x, Backend::kInt8);
  const Tensor via_gemm = clone->infer(x, Backend::kGemm);
  for (std::size_t i = 0; i < via_gemm.numel(); ++i)
    ASSERT_EQ(via_int8[i], via_gemm[i]) << "element " << i;

  // clear_quantization restores the parent to pure fp32 serving too.
  fuse::nn::clear_quantization(*model);
  EXPECT_FALSE(fuse::nn::is_quantized(*model));
}

}  // namespace

#include "core/pipeline.h"

#include <stdexcept>

#include "util/log.h"

namespace fuse::core {

using fuse::data::kChannelsPerFrame;

FusePipeline::FusePipeline(PipelineConfig cfg) : cfg_(std::move(cfg)) {}

void FusePipeline::prepare_data() {
  dataset_ = fuse::data::build_dataset(cfg_.data);
  fused_ = std::make_unique<fuse::data::FusedDataset>(dataset_,
                                                      cfg_.fusion_m);
  split_ = fuse::data::chrono_split(dataset_);
  featurizer_.fit(dataset_, split_.train);

  // Fusion pools points before featurization, so the model input is 8x8x5
  // regardless of M (the paper keeps the model identical across settings).
  fuse::nn::ModelConfig mcfg;
  mcfg.in_channels = kChannelsPerFrame;
  mcfg.seed = cfg_.seed;
  model_ = fuse::nn::build_model(cfg_.model_name, mcfg);
  predictor_ = Predictor(&featurizer_, cfg_.fusion_m);
  processor_ =
      std::make_unique<fuse::radar::Processor>(cfg_.data.radar);
  prepared_ = true;
}

void FusePipeline::require_prepared() const {
  if (!prepared_)
    throw std::logic_error("FusePipeline: call prepare_data() first");
}

TrainHistory FusePipeline::train_baseline() {
  require_prepared();
  Trainer trainer(model_.get(), cfg_.train);
  return trainer.fit(*fused_, featurizer_, split_.train);
}

MetaHistory FusePipeline::train_meta() {
  require_prepared();
  MetaTrainer meta(model_.get(), cfg_.meta);
  return meta.run(*fused_, featurizer_, split_.train);
}

MaeCm FusePipeline::evaluate_test() {
  require_prepared();
  return evaluate(*model_, *fused_, featurizer_, split_.test);
}

fuse::human::Pose
FusePipeline::predict_window(const std::vector<fuse::radar::PointCloud>& window) {
  require_prepared();
  if (window.empty())
    throw std::invalid_argument("predict_window: empty window");
  return predictor_.predict_window(*model_, window);
}

fuse::human::Pose FusePipeline::push_frame(const fuse::radar::PointCloud& cloud) {
  require_prepared();
  const std::size_t blocks = 2 * cfg_.fusion_m + 1;
  stream_buffer_.push_back(cloud);
  while (stream_buffer_.size() > blocks) stream_buffer_.pop_front();
  // Featurize straight out of the deque through the reusable scratch (the
  // workspace path: no per-frame pool/selection/batch allocations).
  if (stream_x_.empty()) stream_x_ = predictor_.alloc_batch(1);
  stream_ptrs_.clear();
  stream_ptrs_.reserve(stream_buffer_.size());
  for (const auto& c : stream_buffer_) stream_ptrs_.push_back(&c);
  predictor_.featurize_window(stream_ptrs_.data(), stream_ptrs_.size(),
                              stream_x_.data(), predict_scratch_);
  return predictor_.predict(*model_, stream_x_).front();
}

fuse::human::Pose FusePipeline::push_cube(const fuse::radar::RadarCube& cube) {
  require_prepared();
  processor_->process(cube, frame_ws_, frame_scratch_);
  return push_frame(frame_scratch_.cloud);
}

}  // namespace fuse::core

#include "tensor/init.h"

#include <cmath>

namespace fuse::tensor {

void init_he_normal(Tensor& t, std::size_t fan_in, fuse::util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gauss(0.0, stddev));
}

void init_xavier_uniform(Tensor& t, std::size_t fan_in, std::size_t fan_out,
                         fuse::util::Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-a, a));
}

void init_uniform(Tensor& t, float bound, fuse::util::Rng& rng) {
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = rng.uniformf(-bound, bound);
}

}  // namespace fuse::tensor

# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_core "/root/repo/build/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_data "/root/repo/build/test_data")
set_tests_properties(test_data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_dsp "/root/repo/build/test_dsp")
set_tests_properties(test_dsp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_human "/root/repo/build/test_human")
set_tests_properties(test_human PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_nn "/root/repo/build/test_nn")
set_tests_properties(test_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_radar "/root/repo/build/test_radar")
set_tests_properties(test_radar PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_radar_calibration "/root/repo/build/test_radar_calibration")
set_tests_properties(test_radar_calibration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_serve "/root/repo/build/test_serve")
set_tests_properties(test_serve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_tracking "/root/repo/build/test_tracking")
set_tests_properties(test_tracking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_util "/root/repo/build/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;47;add_test;/root/repo/CMakeLists.txt;0;")

// Serving throughput: cross-session micro-batched inference vs N
// independent single-sample pipelines.
//
// For each session count the baseline runs every session's stream through
// its own fusion window + tracker with one CNN forward per frame (exactly
// the FusePipeline::push_frame deployment story, N times over).  The
// server preloads the same streams into per-session queues and drains them
// through the inference scheduler, which batches featurized frames across
// sessions into single Module::infer calls (GEMM backend by default).
//
// The batched path wins because the CNN is memory-bound at batch size 1:
// the fc1 weight matrix (1 M parameters) is re-read from memory for every
// frame, while a batch of B frames reads it once — plus one tensor
// allocation and one im2col per batch instead of per frame.
//
// Run: ./serve_throughput [--scale=1] [--frames=200] [--csv=out.csv]

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/tracking.h"
#include "serve/session_manager.h"
#include "util/cli.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using fuse::radar::PointCloud;

std::vector<PointCloud> stream_for(const fuse::data::Dataset& ds,
                                   std::size_t seq, std::size_t count) {
  const auto [start, len] = ds.sequences.at(seq % ds.sequences.size());
  std::vector<PointCloud> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(ds.frames[start + (i % len)].cloud);
  return out;
}

/// N independent single-sample pipelines: per-session window + tracker,
/// one forward per frame.  Returns frames/sec.
double run_baseline(fuse::core::FusePipeline& pl,
                    const std::vector<std::vector<PointCloud>>& streams) {
  const auto& pred = pl.predictor();
  const std::size_t n_frames = streams.empty() ? 0 : streams[0].size();
  std::vector<std::deque<PointCloud>> windows(streams.size());
  std::vector<fuse::core::PoseTracker> trackers(streams.size());
  double checksum = 0.0;
  fuse::util::Stopwatch sw;
  for (std::size_t i = 0; i < n_frames; ++i) {
    for (std::size_t s = 0; s < streams.size(); ++s) {
      auto& win = windows[s];
      win.push_back(streams[s][i]);
      while (win.size() > pred.window_frames()) win.pop_front();
      const auto raw =
          pred.predict_window(pl.model(), {win.begin(), win.end()});
      const auto tracked = trackers[s].update(raw);
      checksum += tracked.joints[0].x;
    }
  }
  const double secs = sw.seconds();
  if (checksum == 12345.6789) std::printf("!");  // defeat dead-code elim
  return static_cast<double>(n_frames * streams.size()) / secs;
}

struct ServerRun {
  double fps = 0.0;
  fuse::serve::ServeStats stats;
};

/// The serving runtime: preloaded queues drained with cross-session
/// micro-batching at the given batch cap.
ServerRun run_server(fuse::core::FusePipeline& pl,
                     const std::vector<std::vector<PointCloud>>& streams,
                     std::size_t max_batch) {
  const std::size_t n_frames = streams.empty() ? 0 : streams[0].size();
  fuse::serve::ServeConfig cfg;
  cfg.max_batch = max_batch;
  cfg.session.queue_capacity = n_frames;
  cfg.session.results_capacity = n_frames;
  fuse::serve::SessionManager server(&pl.predictor(), &pl.model(), cfg);
  std::vector<fuse::serve::SessionId> ids;
  for (std::size_t s = 0; s < streams.size(); ++s)
    ids.push_back(server.open_session());
  for (std::size_t i = 0; i < n_frames; ++i)
    for (std::size_t s = 0; s < streams.size(); ++s)
      server.submit_frame(ids[s], streams[s][i]);

  fuse::util::Stopwatch sw;
  const std::size_t served = server.drain();
  const double secs = sw.seconds();
  ServerRun run;
  run.fps = static_cast<double>(served) / secs;
  run.stats = server.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const fuse::util::Cli cli(argc, argv);
  const double scale = cli.paper() ? 1.0 : cli.scale();
  const auto n_frames =
      static_cast<std::size_t>(cli.get_int("frames", 200));
  if (n_frames == 0) {
    std::fprintf(stderr, "error: --frames must be >= 1\n");
    return 1;
  }

  std::printf("FUSE serving throughput: cross-session batched inference\n\n");

  // Weights are irrelevant for throughput; skip training.
  fuse::core::PipelineConfig cfg;
  cfg.data.frames_per_sequence = fuse::util::scaled(60, scale, 20);
  cfg.fusion_m = 1;
  fuse::core::FusePipeline pl(cfg);
  fuse::util::Stopwatch prep;
  pl.prepare_data();
  std::printf("dataset ready: %zu frames [%.1f s]\n\n", pl.dataset().size(),
              prep.seconds());

  const std::size_t session_counts[] = {1, 2, 4, 8};
  const std::size_t batch_sizes[] = {1, 4, 8, 16};

  fuse::util::Table table("serving throughput (frames/sec)");
  table.set_header({"sessions", "single-sample", "batch=1", "batch=4",
                    "batch=8", "batch=16", "speedup", "p95 ms"});
  double speedup_at_8 = 0.0;

  for (const std::size_t n : session_counts) {
    std::vector<std::vector<PointCloud>> streams;
    for (std::size_t s = 0; s < n; ++s)
      streams.push_back(stream_for(pl.dataset(), s, n_frames));

    const double base_fps = run_baseline(pl, streams);
    std::vector<std::string> row{std::to_string(n),
                                 fuse::util::Table::num(base_fps, 0)};
    double best_fps = 0.0;
    double p95 = 0.0;
    for (const std::size_t b : batch_sizes) {
      const auto run = run_server(pl, streams, b);
      row.push_back(fuse::util::Table::num(run.fps, 0));
      if (run.fps > best_fps) {
        best_fps = run.fps;
        p95 = run.stats.latency_p95_ms;
      }
    }
    const double speedup = best_fps / base_fps;
    if (n == 8) speedup_at_8 = speedup;
    row.push_back(fuse::util::Table::num(speedup, 2) + "x");
    row.push_back(fuse::util::Table::num(p95, 1));
    table.add_row(row);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("best-batch speedup over N independent single-sample "
              "pipelines at 8 sessions: %.2fx %s\n",
              speedup_at_8, speedup_at_8 >= 2.0 ? "(>= 2x target met)"
                                                : "(below 2x target!)");

  const std::string csv = cli.get("csv", "");
  if (!csv.empty()) {
    FILE* f = std::fopen(csv.c_str(), "w");
    if (f) {
      std::fputs(table.to_csv().c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", csv.c_str());
    }
  }
  return 0;
}

#include "nn/model.h"

#include <fstream>
#include <stdexcept>

namespace fuse::nn {

MarsCnn::MarsCnn(std::size_t in_channels, fuse::util::Rng& rng,
                 std::size_t grid_h, std::size_t grid_w,
                 std::size_t conv1_filters, std::size_t conv2_filters,
                 std::size_t hidden, std::size_t outputs)
    : in_channels_(in_channels),
      grid_h_(grid_h),
      grid_w_(grid_w),
      outputs_(outputs),
      conv1_(in_channels, conv1_filters, 3, 1, rng),
      conv2_(conv1_filters, conv2_filters, 3, 1, rng),
      fc1_(conv2_filters * grid_h * grid_w, hidden, rng),
      fc2_(hidden, outputs, rng) {}

Tensor MarsCnn::forward(const Tensor& x) {
  Tensor h = conv1_.forward(x);
  h = relu1_.forward(h);
  h = conv2_.forward(h);
  h = relu2_.forward(h);
  h = flatten_.forward(h);
  h = fc1_.forward(h);
  h = relu3_.forward(h);
  return fc2_.forward(h);
}

Tensor MarsCnn::infer(const Tensor& x) const {
  Tensor h = conv1_.infer(x);
  fuse::tensor::relu_inplace(h);
  h = conv2_.infer(h);
  fuse::tensor::relu_inplace(h);
  h.reshape({h.dim(0), h.numel() / h.dim(0)});
  h = fc1_.infer(h);
  fuse::tensor::relu_inplace(h);
  return fc2_.infer(h);
}

void MarsCnn::backward(const Tensor& dy) {
  Tensor d = fc2_.backward(dy);
  d = relu3_.backward(d);
  d = fc1_.backward(d);
  d = flatten_.backward(d);
  d = relu2_.backward(d);
  d = conv2_.backward(d);
  d = relu1_.backward(d);
  (void)conv1_.backward(d);
}

std::vector<Tensor*> MarsCnn::params() {
  std::vector<Tensor*> out;
  for (auto* t : conv1_.params()) out.push_back(t);
  for (auto* t : conv2_.params()) out.push_back(t);
  for (auto* t : fc1_.params()) out.push_back(t);
  for (auto* t : fc2_.params()) out.push_back(t);
  return out;
}

std::vector<Tensor*> MarsCnn::grads() {
  std::vector<Tensor*> out;
  for (auto* t : conv1_.grads()) out.push_back(t);
  for (auto* t : conv2_.grads()) out.push_back(t);
  for (auto* t : fc1_.grads()) out.push_back(t);
  for (auto* t : fc2_.grads()) out.push_back(t);
  return out;
}

std::vector<Tensor*> MarsCnn::last_layer_params() { return fc2_.params(); }
std::vector<Tensor*> MarsCnn::last_layer_grads() { return fc2_.grads(); }

void MarsCnn::zero_grad() {
  for (Tensor* g : grads()) g->zero();
}

std::size_t MarsCnn::num_params() {
  std::size_t n = 0;
  for (Tensor* p : params()) n += p->numel();
  return n;
}

void MarsCnn::copy_params_from(MarsCnn& other) {
  auto dst = params();
  auto src = other.params();
  if (dst.size() != src.size())
    throw std::invalid_argument("copy_params_from: architecture mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->shape() != src[i]->shape())
      throw std::invalid_argument("copy_params_from: shape mismatch");
    *dst[i] = *src[i];
  }
}

void MarsCnn::save(std::ostream& os) {
  for (Tensor* p : params()) p->save(os);
}

void MarsCnn::load(std::istream& is) {
  for (Tensor* p : params()) {
    Tensor t = Tensor::load(is);
    if (t.shape() != p->shape())
      throw std::runtime_error("MarsCnn::load: shape mismatch");
    *p = std::move(t);
  }
}

void MarsCnn::save_file(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("MarsCnn::save_file: cannot open " + path);
  save(os);
}

void MarsCnn::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("MarsCnn::load_file: cannot open " + path);
  load(is);
}

}  // namespace fuse::nn

// Chaos suite for the overload-hardened serving plane: multi-seed fault-
// matrix soak on the threaded server, crash-consistent clone persistence
// (mid-checkpoint kill, torn writes, deleted/truncated checkpoints),
// NaN/Inf input guards with session quarantine, global admission control,
// and the graceful-degradation ladder end to end.
//
// Everything here is deterministic: faults come from the seed-driven layer
// in util/fault.h, overload is driven in synchronous mode by real queue
// depths (tick_high_s = 0 — no wall-clock dependence), and "crashes" are
// injected torn writes / truncations rather than real kills.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "serve/reshard.h"
#include "serve/server.h"
#include "util/fault.h"

namespace {

namespace fs = std::filesystem;

using fuse::human::Pose;
using fuse::radar::PointCloud;
using fuse::serve::AdaptState;
using fuse::serve::ServeConfig;
using fuse::serve::Server;
using fuse::serve::SessionConfig;
using fuse::serve::SubmitResult;
using fuse::util::FaultConfig;
using fuse::util::FaultPoint;
using fuse::util::ScopedFaults;

/// Shared environment: a prepared (untrained) pipeline over a miniature
/// dataset, exactly like test_serve's world().
fuse::core::FusePipeline& world() {
  static fuse::core::FusePipeline* pipeline = [] {
    fuse::core::PipelineConfig cfg;
    cfg.data.frames_per_sequence = 40;
    cfg.fusion_m = 1;
    auto* p = new fuse::core::FusePipeline(cfg);
    p->prepare_data();
    return p;
  }();
  return *pipeline;
}

struct LabeledFrame {
  PointCloud cloud;
  Pose label;
};

std::vector<LabeledFrame> labeled_frames(std::size_t seq, std::size_t count) {
  const auto& ds = world().dataset();
  const auto [start, len] = ds.sequences.at(seq);
  std::vector<LabeledFrame> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& f = ds.frames[start + (i % len)];
    out.push_back({f.cloud, f.label});
  }
  return out;
}

void expect_pose_eq(const Pose& a, const Pose& b) {
  for (std::size_t j = 0; j < fuse::human::kNumJoints; ++j) {
    EXPECT_FLOAT_EQ(a.joints[j].x, b.joints[j].x);
    EXPECT_FLOAT_EQ(a.joints[j].y, b.joints[j].y);
    EXPECT_FLOAT_EQ(a.joints[j].z, b.joints[j].z);
  }
}

ServeConfig adapting_cfg() {
  ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.session.queue_capacity = 128;
  cfg.session.results_capacity = 512;
  cfg.session.adapt.enabled = true;
  cfg.session.adapt.min_samples = 8;
  cfg.session.adapt.round_every = 4;
  cfg.session.adapt.steps_per_round = 2;
  cfg.session.adapt.buffer_capacity = 16;
  return cfg;
}

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

PointCloud nan_cloud(PointCloud cloud) {
  if (cloud.points.empty()) cloud.points.emplace_back();
  cloud.points[0].y = std::numeric_limits<float>::quiet_NaN();
  return cloud;
}

#if FUSE_FAULT_INJECT

// ------------------------------------------------- multi-seed fault soak --

// The full fault matrix against the threaded server: corrupt inputs, disk
// I/O failures on every checkpoint path, torn writes and latency spikes at
// once, across seeds.  The server must neither crash, deadlock (suite
// timeout) nor leak (the CI ASan leg runs this test), and the frame
// accounting must balance exactly: every accepted frame is served, shed or
// rejected as non-finite — never silently lost.
TEST(Chaos, ThreadedSoakSurvivesFaultMatrixAcrossSeeds) {
  auto& pl = world();
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultConfig fc;
    fc.seed = seed;
    fc.p(FaultPoint::kCorruptCloud) = 0.05;
    fc.p(FaultPoint::kCorruptLabel) = 0.05;
    fc.p(FaultPoint::kDiskWrite) = 0.10;
    fc.p(FaultPoint::kTornWrite) = 0.05;
    fc.p(FaultPoint::kDiskRead) = 0.05;
    fc.p(FaultPoint::kLatencySpike) = 0.05;
    fc.p(FaultPoint::kMigrationKill) = 0.10;  // some migrations die mid-move
    fc.p(FaultPoint::kTargetShardCrash) = 0.10;
    fc.spike_ms = 0.5;
    ScopedFaults faults(fc);

    const std::string dir = fresh_dir("fuse_chaos_soak");
    ServeConfig cfg = adapting_cfg();
    cfg.num_shards = 2;  // cross-shard migrations join the storm
    cfg.max_in_flight = 32;  // admission control live during the soak
    cfg.clone_store.dir = dir;
    cfg.clone_store.max_resident_clones = 1;  // evictions exercise disk I/O
    Server server(&pl.predictor(), &pl.model(), cfg);

    constexpr std::size_t kSessions = 3;
    constexpr std::size_t kFrames = 30;
    std::vector<fuse::serve::SessionId> ids;
    std::vector<std::vector<LabeledFrame>> streams;
    for (std::size_t s = 0; s < kSessions; ++s) {
      ids.push_back(server.open_session());
      streams.push_back(labeled_frames(s, kFrames));
    }

    server.start();
    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < kSessions; ++s)
      producers.emplace_back([&, s] {
        for (std::size_t i = 0; i < kFrames; ++i)
          // false = admission-rejected; the producer simply moves on, as a
          // real sensor feed would.
          (void)server.submit_frame(ids[s], streams[s][i].cloud,
                                    &streams[s][i].label);
      });
    // A migration storm rides the fault matrix: every session ping-pongs
    // between the shards while the producers flood it, with kMigrationKill
    // and kTargetShardCrash randomly aborting moves mid-flight.
    std::thread migrator([&] {
      for (std::size_t round = 0; round < 40; ++round)
        for (std::size_t s = 0; s < kSessions; ++s)
          (void)server.migrate_session(ids[s], round % 2);
    });
    for (auto& t : producers) t.join();
    migrator.join();
    server.stop();
    server.drain();  // flush whatever was still queued at stop()

    const auto stats = server.stats();
    // Conservation: accepted = served + rejected-as-non-finite (+ queue
    // evictions, impossible here with 128-deep queues and 30-frame streams).
    // Holds across every migration — completed, rolled back, or rejected
    // at the kMigrating door — because moves drain and requeue, never drop.
    EXPECT_EQ(stats.frames_in, stats.frames_out + stats.non_finite_frames +
                                   stats.queue_evicted + stats.deadline_shed);
    EXPECT_EQ(stats.in_flight, 0u);
    EXPECT_GT(stats.migrations + stats.migration_failures, 0u);
    // The matrix actually fired where it statistically must (~4-5 expected
    // corruptions per point over ~90 submissions at p = 0.05).
    EXPECT_GT(stats.non_finite_frames + stats.non_finite_labels, 0u);
    // Every pose that did come out is finite — corruption never propagates.
    for (std::size_t s = 0; s < kSessions; ++s)
      for (const auto& r : server.poll_results(ids[s])) {
        ASSERT_TRUE(std::isfinite(r.raw.joints[0].x));
        ASSERT_TRUE(std::isfinite(r.tracked.joints[0].x));
      }
    // The stats endpoint stays serializable mid-chaos.
    EXPECT_NE(server.stats_json().find("\"robustness\""), std::string::npos);
    fs::remove_all(dir);
  }
}

// A synchronous run under the same seed is bit-for-bit reproducible:
// identical fault firings, identical rejection counts, identical poses.
TEST(Chaos, SyncRunUnderFaultsIsSeedDeterministic) {
  auto& pl = world();
  constexpr std::size_t kFrames = 32;
  struct RunResult {
    std::vector<fuse::serve::PoseResult> results;
    std::uint64_t non_finite_frames, non_finite_labels;
  };
  const auto run = [&] {
    FaultConfig fc;
    fc.seed = 77;
    fc.p(FaultPoint::kCorruptCloud) = 0.2;
    fc.p(FaultPoint::kCorruptLabel) = 0.2;
    ScopedFaults faults(fc);
    ServeConfig cfg = adapting_cfg();
    cfg.session.quarantine_after = 0;  // keep every guard decision local
    Server server(&pl.predictor(), &pl.model(), cfg);
    const auto id = server.open_session();
    const auto stream = labeled_frames(0, kFrames);
    for (const auto& f : stream) {
      server.submit_frame(id, f.cloud, &f.label);
      server.drain();
    }
    const auto stats = server.stats();
    return RunResult{server.poll_results(id), stats.non_finite_frames,
                     stats.non_finite_labels};
  };
  const auto a = run(), b = run();
  EXPECT_GT(a.non_finite_frames, 0u);
  EXPECT_EQ(a.non_finite_frames, b.non_finite_frames);
  EXPECT_EQ(a.non_finite_labels, b.non_finite_labels);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    expect_pose_eq(a.results[i].raw, b.results[i].raw);
    expect_pose_eq(a.results[i].tracked, b.results[i].tracked);
  }
}

#endif  // FUSE_FAULT_INJECT

// --------------------------------------- crash-consistent clone restore --

/// Fixture state for the restore tests: adapts kSessions clones on a first
/// server, captures unlabeled probe references, persists, and tears the
/// server down — the "process before the crash".
struct RestoreWorld {
  static constexpr std::size_t kSessions = 3;
  static constexpr std::size_t kProbe = 5;
  std::string dir;
  ServeConfig cfg;
  std::vector<fuse::serve::SessionId> ids;
  std::vector<LabeledFrame> probe;
  std::vector<std::vector<fuse::serve::PoseResult>> ref;

  explicit RestoreWorld(const char* name, std::size_t num_shards = 1) {
    auto& pl = world();
    dir = fresh_dir(name);
    cfg = adapting_cfg();
    cfg.num_shards = num_shards;
    cfg.clone_store.dir = dir;
    cfg.session.tracking = false;  // tracker state is not persisted
    probe = labeled_frames(3, kProbe);
    ref.resize(kSessions);

    Server server(&pl.predictor(), &pl.model(), cfg);
    std::vector<std::vector<LabeledFrame>> streams;
    for (std::size_t s = 0; s < kSessions; ++s) {
      ids.push_back(server.open_session());
      streams.push_back(labeled_frames(s, 12));
    }
    for (std::size_t i = 0; i < streams[0].size(); ++i) {
      for (std::size_t s = 0; s < kSessions; ++s)
        server.submit_frame(ids[s], streams[s][i].cloud,
                            &streams[s][i].label);
      server.drain();
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      EXPECT_EQ(server.stats().per_session[s].adapt_state,
                AdaptState::kAdapted);
      (void)server.poll_results(ids[s]);
    }
    // Unlabeled probe on the original server = the recovery reference.
    for (std::size_t i = 0; i < kProbe; ++i) {
      for (std::size_t s = 0; s < kSessions; ++s)
        server.submit_frame(ids[s], probe[i].cloud);
      server.drain();
    }
    for (std::size_t s = 0; s < kSessions; ++s)
      ref[s] = server.poll_results(ids[s]);
    server.persist_clones();
  }

  std::string delta_path(std::size_t s) const {
    return dir + "/clone_" + std::to_string(ids[s]) + ".delta";
  }

  /// Probes `server` on the given restored session and asserts bit-exact
  /// recovery against the pre-crash reference.  The restored fusion window
  /// starts empty; with 3-frame windows both servers hold exactly
  /// [p_{i-2}, p_{i-1}, p_i] from probe index 2 on.
  void expect_recovered(Server& server, std::size_t s) {
    for (std::size_t i = 0; i < kProbe; ++i)
      server.submit_frame(ids[s], probe[i].cloud);
    server.drain();
    const auto results = server.poll_results(ids[s]);
    ASSERT_EQ(results.size(), kProbe);
    for (std::size_t i = 0; i < kProbe; ++i)
      EXPECT_TRUE(results[i].adapted_model) << "session " << s;
    for (std::size_t i = 2; i < kProbe; ++i)
      expect_pose_eq(results[i].raw, ref[s][i].raw);
  }
};

// The headline acceptance test: a checkpoint torn mid-write (the injected
// equivalent of a kill -9 between write() and rename()).  restore_clones
// must recover every uncorrupted clone bit-exactly and REPORT the corrupt
// one — not throw on it.
TEST(Chaos, MidCheckpointKillRecoversUncorruptedClonesBitExactly) {
  auto& pl = world();
  RestoreWorld w("fuse_chaos_kill");

  // Truncate session 0's checkpoint to half its bytes: exactly the on-disk
  // state a crash mid-checkpoint leaves behind when the tmp file's rename
  // already landed but the data didn't all reach it.
  {
    std::ifstream is(w.delta_path(0), std::ios::binary);
    std::string blob{std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>()};
    ASSERT_GT(blob.size(), 2u);
    std::ofstream os(w.delta_path(0), std::ios::binary | std::ios::trunc);
    os.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
  }

  Server server(&pl.predictor(), &pl.model(), w.cfg);
  std::vector<fuse::serve::SessionId> restored;
  ASSERT_NO_THROW(restored = server.restore_clones(w.cfg.session));
  ASSERT_EQ(restored.size(), RestoreWorld::kSessions - 1);
  EXPECT_EQ(std::find(restored.begin(), restored.end(), w.ids[0]),
            restored.end());
  EXPECT_EQ(server.stats().clone_store.restore_skipped, 1u);
  // The corrupt file was cleaned off disk; the survivors serve bit-exactly.
  EXPECT_FALSE(fs::exists(w.delta_path(0)));
  w.expect_recovered(server, 1);
  w.expect_recovered(server, 2);
  fs::remove_all(w.dir);
}

// Satellite: a checkpoint DELETED between persist and restore (manifest
// still names it) is skipped and reported the same way.
TEST(Chaos, RestoreToleratesDeletedCheckpoint) {
  auto& pl = world();
  RestoreWorld w("fuse_chaos_deleted");
  fs::remove(w.delta_path(1));

  Server server(&pl.predictor(), &pl.model(), w.cfg);
  const auto restored = server.restore_clones(w.cfg.session);
  ASSERT_EQ(restored.size(), RestoreWorld::kSessions - 1);
  EXPECT_EQ(std::find(restored.begin(), restored.end(), w.ids[1]),
            restored.end());
  EXPECT_EQ(server.stats().clone_store.restore_skipped, 1u);
  w.expect_recovered(server, 0);
  w.expect_recovered(server, 2);
  fs::remove_all(w.dir);
}

// A crash BEFORE the manifest rename: checkpoints on disk, no manifest.
// restore falls back to scanning the directory and recovers all of them.
TEST(Chaos, MissingManifestFallsBackToDirectoryScan) {
  auto& pl = world();
  RestoreWorld w("fuse_chaos_manifest");
  fs::remove(w.dir + "/clones.manifest");

  Server server(&pl.predictor(), &pl.model(), w.cfg);
  const auto restored = server.restore_clones(w.cfg.session);
  ASSERT_EQ(restored.size(), RestoreWorld::kSessions);
  for (std::size_t s = 0; s < RestoreWorld::kSessions; ++s)
    w.expect_recovered(server, s);
  fs::remove_all(w.dir);
}

#if FUSE_FAULT_INJECT

// Injected torn writes on EVERY file of a persist (manifest included):
// restore finds only garbage, reports all of it, recovers nothing — and
// the server still cold-starts cleanly.
TEST(Chaos, FullyTornPersistIsReportedNotFatal) {
  auto& pl = world();
  RestoreWorld w("fuse_chaos_torn");

  {
    FaultConfig fc;
    fc.p(FaultPoint::kTornWrite) = 1.0;
    ScopedFaults faults(fc);
    ServeConfig cfg = w.cfg;
    Server server(&pl.predictor(), &pl.model(), cfg);
    const auto restored = server.restore_clones(cfg.session);
    // The pristine generation from RestoreWorld is still intact, so this
    // restore succeeds...
    ASSERT_EQ(restored.size(), RestoreWorld::kSessions);
    // ...but re-adapting and re-persisting under 100% torn writes shreds
    // every new checkpoint.
    const auto stream = labeled_frames(0, 12);
    for (const auto& f : stream) {
      for (const auto id : w.ids) server.submit_frame(id, f.cloud, &f.label);
      server.drain();
    }
    ASSERT_NO_THROW(server.persist_clones());
  }

  Server server2(&pl.predictor(), &pl.model(), w.cfg);
  std::vector<fuse::serve::SessionId> restored;
  ASSERT_NO_THROW(restored = server2.restore_clones(w.cfg.session));
  EXPECT_TRUE(restored.empty());
  EXPECT_GE(server2.stats().clone_store.restore_skipped,
            RestoreWorld::kSessions);
  // Cold start still serves.
  const auto id = server2.open_session();
  const auto f = labeled_frames(0, 1);
  ASSERT_EQ(server2.submit_frame(id, f[0].cloud), SubmitResult::kAccepted);
  server2.drain();
  EXPECT_EQ(server2.poll_results(id).size(), 1u);
  fs::remove_all(w.dir);
}

// Injected ENOSPC/EIO on every write: persist_clones is best-effort — it
// counts the failures and returns instead of taking the server down.
TEST(Chaos, CheckpointWriteFailuresAreContainedAndCounted) {
  auto& pl = world();
  const std::string dir = fresh_dir("fuse_chaos_enospc");
  ServeConfig cfg = adapting_cfg();
  cfg.clone_store.dir = dir;
  Server server(&pl.predictor(), &pl.model(), cfg);
  const auto id = server.open_session();
  const auto stream = labeled_frames(0, 12);
  for (const auto& f : stream) {
    server.submit_frame(id, f.cloud, &f.label);
    server.drain();
  }
  ASSERT_EQ(server.stats().per_session[0].adapt_state, AdaptState::kAdapted);

  {
    FaultConfig fc;
    fc.p(FaultPoint::kDiskWrite) = 1.0;
    ScopedFaults faults(fc);
    ASSERT_NO_THROW(server.persist_clones());
  }
  // checkpoint + manifest both failed, both counted; nothing landed.
  EXPECT_GE(server.stats().clone_store.checkpoint_failures, 2u);
  Server server2(&pl.predictor(), &pl.model(), cfg);
  EXPECT_TRUE(server2.restore_clones(cfg.session).empty());
  fs::remove_all(dir);
}

// Satellite: a NaN label must never reach the adaptation buffer — the
// session's poses stay bit-identical to a never-labeled run and the clone
// is never created.
TEST(Chaos, NanLabelsNeverPoisonAdaptation) {
  auto& pl = world();
  constexpr std::size_t kFrames = 24;
  const auto stream = labeled_frames(0, kFrames);

  ServeConfig cfg = adapting_cfg();
  cfg.session.quarantine_after = 0;  // isolate the guard from quarantine
  Server poisoned(&pl.predictor(), &pl.model(), cfg);
  Server clean(&pl.predictor(), &pl.model(), cfg);
  const auto idp = poisoned.open_session();
  const auto idc = clean.open_session();
  {
    FaultConfig fc;
    fc.p(FaultPoint::kCorruptLabel) = 1.0;  // every label arrives NaN
    ScopedFaults faults(fc);
    for (const auto& f : stream) {
      poisoned.submit_frame(idp, f.cloud, &f.label);
      poisoned.drain();
    }
  }
  for (const auto& f : stream) {
    clean.submit_frame(idc, f.cloud);  // no labels at all
    clean.drain();
  }

  const auto stats = poisoned.stats();
  EXPECT_EQ(stats.non_finite_labels, kFrames);
  EXPECT_EQ(stats.per_session[0].adapt_rounds, 0u);
  EXPECT_NE(stats.per_session[0].adapt_state, AdaptState::kAdapted);
  const auto rp = poisoned.poll_results(idp);
  const auto rc = clean.poll_results(idc);
  ASSERT_EQ(rp.size(), kFrames);
  ASSERT_EQ(rc.size(), kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    EXPECT_FALSE(rp[i].adapted_model);
    expect_pose_eq(rp[i].raw, rc[i].raw);
  }
}

// ------------------------------------------------ re-shard crash matrix --

// Tentpole acceptance: kill the offline re-shard at every fault point it
// crosses — mid-copy kill, torn journal write, failed and torn destination
// writes — across seeds.  Whatever state the crash left behind, (a) a
// sharded server refuses a half-migrated store loudly instead of serving
// from it, and (b) re-running the tool completes the migration, after
// which every clone restores bit-exactly.
TEST(Chaos, ReshardCrashAtEveryFaultPointIsRecoverable) {
  auto& pl = world();
  RestoreWorld w("fuse_chaos_reshard", 2);  // pristine 2-shard store
  const struct {
    FaultPoint point;
    const char* name;
    double p;
  } kPoints[] = {
      // p = 1.0 where the point has a single deterministic site (first
      // copy / first journal write); 0.7 on the generic disk points so the
      // seeds crash at different stages of the protocol.
      {FaultPoint::kMigrationKill, "kMigrationKill", 1.0},
      {FaultPoint::kTornShardMap, "kTornShardMap", 1.0},
      {FaultPoint::kDiskWrite, "kDiskWrite", 0.7},
      {FaultPoint::kTornWrite, "kTornWrite", 0.7},
  };
  for (const auto& [point, name, p] : kPoints) {
    std::size_t crashes = 0;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      SCOPED_TRACE(std::string(name) + " seed " + std::to_string(seed));
      const std::string dir = fresh_dir("fuse_chaos_reshard_run");
      fs::copy(w.dir, dir, fs::copy_options::recursive);
      fuse::serve::ReshardConfig rcfg;
      rcfg.dir = dir;
      rcfg.to = 4;
      rcfg.base = &pl.model();
      {
        FaultConfig fc;
        fc.seed = seed;
        fc.p(point) = p;
        ScopedFaults faults(fc);
        try {
          (void)fuse::serve::reshard(rcfg);
        } catch (const std::exception&) {
          ++crashes;  // the injected crash; the store must survive it
        }
      }
      // If checkpoints already landed beyond the old layout, a 2-shard
      // server must refuse the half-migrated store by name — restoring
      // from it would silently split sessions across topologies.
      const bool stale_new_shards = [&] {
        for (std::size_t k = 2; k < 4; ++k) {
          std::error_code ec;
          for (const auto& e : fs::directory_iterator(
                   fs::path(dir) / ("shard_" + std::to_string(k)), ec))
            if (e.path().extension() == ".delta") return true;
        }
        return false;
      }();
      if (stale_new_shards) {
        ServeConfig cfg2 = w.cfg;
        cfg2.clone_store.dir = dir;
        Server refuse(&pl.predictor(), &pl.model(), cfg2);
        EXPECT_THROW(refuse.restore_clones(cfg2.session), std::logic_error);
      }
      // Faults cleared: one clean re-run always finishes the migration
      // (resuming the journal when its plan or commit survived)...
      const auto report = fuse::serve::reshard(rcfg);
      EXPECT_EQ(report.to, 4u);
      // ...and the 4-shard layout restores every clone bit-exactly.
      ServeConfig cfg4 = w.cfg;
      cfg4.num_shards = 4;
      cfg4.clone_store.dir = dir;
      Server server(&pl.predictor(), &pl.model(), cfg4);
      std::vector<fuse::serve::SessionId> restored;
      ASSERT_NO_THROW(restored = server.restore_clones(cfg4.session));
      ASSERT_EQ(restored.size(), RestoreWorld::kSessions);
      for (std::size_t s = 0; s < RestoreWorld::kSessions; ++s)
        w.expect_recovered(server, s);
      fs::remove_all(dir);
    }
    EXPECT_GT(crashes, 0u) << name << " never fired across the seed sweep";
  }
  fs::remove_all(w.dir);
}

// --------------------------------------------- live-migration rollback --

// A migration killed mid-move (before or after the delta codec round-trip)
// rolls back completely: the session never leaves its source shard, every
// drained frame is requeued in order, the failure is counted, and the same
// migration lands cleanly once the fault clears — bit-exact against a
// server that never migrated at all.
TEST(Chaos, LiveMigrationFaultsRollBackWithoutLosingFrames) {
  auto& pl = world();
  const struct {
    FaultPoint point;
    const char* name;
  } kPoints[] = {
      {FaultPoint::kMigrationKill, "kMigrationKill"},
      {FaultPoint::kTargetShardCrash, "kTargetShardCrash"},
  };
  for (const auto& [point, name] : kPoints) {
    SCOPED_TRACE(name);
    ServeConfig cfg = adapting_cfg();
    cfg.num_shards = 2;
    cfg.session.tracking = false;
    Server server(&pl.predictor(), &pl.model(), cfg);
    Server control(&pl.predictor(), &pl.model(), cfg);
    const auto id = server.open_session();  // id 1 -> home shard 0
    const auto cid = control.open_session();
    const auto stream = labeled_frames(0, 12);
    for (const auto& f : stream) {
      server.submit_frame(id, f.cloud, &f.label);
      control.submit_frame(cid, f.cloud, &f.label);
      server.drain();
      control.drain();
    }
    ASSERT_EQ(server.stats().per_session[0].adapt_state,
              AdaptState::kAdapted);
    (void)server.poll_results(id);
    (void)control.poll_results(cid);

    // Queue a backlog, then kill the migration at `point`.
    const auto probe = labeled_frames(3, 6);
    for (const auto& f : probe) {
      ASSERT_EQ(server.submit_frame(id, f.cloud), SubmitResult::kAccepted);
      control.submit_frame(cid, f.cloud);
    }
    ASSERT_TRUE(server.migrate_session(id, 1));
    {
      FaultConfig fc;
      fc.p(point) = 1.0;
      ScopedFaults faults(fc);
      server.run_once();  // the move dies; the tick keeps serving
    }
    auto stats = server.stats();
    EXPECT_EQ(stats.migration_failures, 1u);
    EXPECT_EQ(stats.migrations, 0u);
    EXPECT_EQ(server.shard_of(id), 0u);  // never left the source shard
    server.drain();
    control.drain();

    // Every queued frame survived the rollback, in order, bit-exactly.
    const auto got = server.poll_results(id);
    const auto want = control.poll_results(cid);
    ASSERT_EQ(got.size(), probe.size());
    ASSERT_EQ(want.size(), probe.size());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      EXPECT_TRUE(got[i].adapted_model);
      expect_pose_eq(got[i].raw, want[i].raw);
    }
    stats = server.stats();
    EXPECT_EQ(stats.frames_in, stats.frames_out);  // nothing lost

    // Fault cleared: the same migration now lands, still bit-exact.
    ASSERT_TRUE(server.migrate_session(id, 1));
    server.run_once();
    EXPECT_EQ(server.shard_of(id), 1u);
    EXPECT_EQ(server.stats().migrations, 1u);
    for (const auto& f : probe) {
      server.submit_frame(id, f.cloud);
      control.submit_frame(cid, f.cloud);
    }
    server.drain();
    control.drain();
    const auto got2 = server.poll_results(id);
    const auto want2 = control.poll_results(cid);
    ASSERT_EQ(got2.size(), want2.size());
    for (std::size_t i = 0; i < got2.size(); ++i)
      expect_pose_eq(got2[i].raw, want2[i].raw);
  }
}

#endif  // FUSE_FAULT_INJECT

// ------------------------------------------------ quarantine isolation --

// A sensor streaming garbage gets its session quarantined: the corrupt
// frames are rejected, the (possibly poisoned) clone and checkpoint are
// dropped, clean frames serve from the shared meta-init — and the
// NEIGHBOUR session sharing the scheduler is completely unaffected.
// recycle_session lifts the quarantine for the next subject.
TEST(Chaos, QuarantineIsolatesOffenderAndRecycleLifts) {
  auto& pl = world();
  const std::string dir = fresh_dir("fuse_chaos_quarantine");
  ServeConfig cfg = adapting_cfg();
  cfg.clone_store.dir = dir;
  cfg.session.quarantine_after = 4;
  Server server(&pl.predictor(), &pl.model(), cfg);
  const auto offender = server.open_session();
  const auto neighbour = server.open_session();

  // Both sessions adapt normally first.
  const auto so = labeled_frames(0, 12);
  const auto sn = labeled_frames(1, 12);
  for (std::size_t i = 0; i < 12; ++i) {
    server.submit_frame(offender, so[i].cloud, &so[i].label);
    server.submit_frame(neighbour, sn[i].cloud, &sn[i].label);
    server.drain();
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.per_session[0].adapt_state, AdaptState::kAdapted);
  EXPECT_EQ(stats.clone_store.tracked, 2u);
  (void)server.poll_results(offender);
  (void)server.poll_results(neighbour);

  // The offender now streams NaN clouds past its quarantine threshold.
  for (int i = 0; i < 4; ++i) {
    server.submit_frame(offender, nan_cloud(so[0].cloud));
    server.drain();
  }
  stats = server.stats();
  EXPECT_TRUE(server.poll_results(offender).empty());  // all rejected
  EXPECT_EQ(stats.non_finite_frames, 4u);
  EXPECT_EQ(stats.quarantined_sessions, 1u);
  EXPECT_TRUE(stats.per_session[0].quarantined);
  // Quarantine demotes to the shared model and drops clone + checkpoint.
  EXPECT_EQ(stats.per_session[0].adapt_state, AdaptState::kShared);
  EXPECT_EQ(stats.clone_store.tracked, 1u);
  EXPECT_FALSE(fs::exists(dir + "/clone_" + std::to_string(offender) +
                          ".delta"));

  // Clean frames from a quarantined session still serve — shared model,
  // and no NEW adaptation rounds run even with labels attached (the
  // pre-quarantine rounds stay on the cumulative counter).
  const auto rounds_at_quarantine = stats.per_session[0].adapt_rounds;
  for (std::size_t i = 0; i < 8; ++i) {
    server.submit_frame(offender, so[i].cloud, &so[i].label);
    server.drain();
  }
  auto results = server.poll_results(offender);
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) EXPECT_FALSE(r.adapted_model);
  EXPECT_EQ(server.stats().per_session[0].adapt_rounds,
            rounds_at_quarantine);

  // The neighbour never noticed: still adapted, still serving its clone.
  server.submit_frame(neighbour, sn[0].cloud);
  server.drain();
  results = server.poll_results(neighbour);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].adapted_model);

  // Recycling the offender (new subject, new sensor) lifts the quarantine.
  server.recycle_session(offender);
  for (std::size_t i = 0; i < 12; ++i) {
    server.submit_frame(offender, so[i].cloud, &so[i].label);
    server.drain();
  }
  stats = server.stats();
  EXPECT_FALSE(stats.per_session[0].quarantined);
  EXPECT_EQ(stats.per_session[0].adapt_state, AdaptState::kAdapted);
  EXPECT_EQ(stats.quarantined_sessions, 0u);
  fs::remove_all(dir);
}

// ------------------------------------------------- admission control ----

TEST(Chaos, AdmissionControlBoundsGlobalInFlight) {
  auto& pl = world();
  ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.max_in_flight = 8;
  cfg.session.queue_capacity = 64;
  Server server(&pl.predictor(), &pl.model(), cfg);
  const auto a = server.open_session();
  const auto b = server.open_session();
  const auto stream = labeled_frames(0, 20);

  // The budget is GLOBAL: 8 accepted across both sessions, the rest
  // refused at the door regardless of per-session queue headroom.
  std::size_t taken = 0, refused = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    for (const auto id : {a, b}) {
      const auto r = server.submit_frame(id, stream[i].cloud);
      taken += fuse::serve::accepted(r);
      refused += r == SubmitResult::kAdmissionRejected;
    }
  }
  EXPECT_EQ(taken, 8u);
  EXPECT_EQ(refused, 12u);  // the typed code names the cause
  auto stats = server.stats();
  EXPECT_EQ(stats.in_flight, 8u);
  EXPECT_EQ(stats.admission_rejected, 12u);
  EXPECT_EQ(stats.frames_in, 8u);

  // Serving releases the budget: everything queued serves, and submission
  // works again afterwards.
  server.drain();
  stats = server.stats();
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.frames_out, 8u);
  EXPECT_EQ(server.submit_frame(a, stream[0].cloud), SubmitResult::kAccepted);
  server.drain();
  // Closing a session with queued frames must release its budget share.
  for (std::size_t i = 0; i < 8; ++i) server.submit_frame(b, stream[i].cloud);
  server.close_session(b);
  EXPECT_EQ(server.stats().in_flight, 0u);
  EXPECT_EQ(server.submit_frame(a, stream[0].cloud), SubmitResult::kAccepted);
}

// -------------------------------------------- degradation ladder, e2e ---

// Satellite: the ladder driven deterministically in synchronous mode by
// real queue depths (tick signal off) — climbs to shed under a burst,
// sheds the backlog pre-inference, then unwinds to full fidelity within
// one detector window of the queue clearing.
TEST(Chaos, OverloadLadderShedsBacklogAndRecovers) {
  auto& pl = world();
  ServeConfig cfg = adapting_cfg();
  cfg.max_batch = 2;
  cfg.session.queue_capacity = 128;
  cfg.overload.enabled = true;
  cfg.overload.queue_high_water = 8;
  cfg.overload.tick_high_s = 0.0;  // queue-depth signal only: no wall clock
  cfg.overload.engage_passes = 1;
  cfg.overload.release_passes = 2;
  cfg.overload.release_step_passes = 1;
  cfg.overload.shed_deadline_s = 0.0;  // at rung 3 every queued frame sheds
  Server server(&pl.predictor(), &pl.model(), cfg);
  const auto id = server.open_session();
  const auto stream = labeled_frames(0, 64);

  // A 64-frame burst against a 2-frame batch: unsustainable by
  // construction (~32 passes of backlog).
  for (const auto& f : stream)
    ASSERT_TRUE(fuse::serve::accepted(server.submit_frame(id, f.cloud,
                                                          &f.label)));
  std::vector<int> levels;
  for (int pass = 0; pass < 40 && server.stats().in_flight > 0; ++pass) {
    server.run_once();
    levels.push_back(server.stats().overload_level);
  }
  // The ladder climbed one rung per pass to shedding, which cleared the
  // backlog orders of magnitude faster than inference would have.
  ASSERT_GE(levels.size(), 4u);
  EXPECT_EQ(levels[0], 1);
  EXPECT_EQ(levels[1], 2);
  EXPECT_EQ(levels[2], 3);
  const auto mid = server.stats();
  EXPECT_GT(mid.deadline_shed, 0u);
  EXPECT_GT(mid.shed_rate, 0.0);
  EXPECT_EQ(mid.frames_in,
            mid.frames_out + mid.deadline_shed + mid.non_finite_frames);
  // Adaptation was paused from the first rung on: only the frames served
  // before the ladder engaged could buffer, far short of a round.
  EXPECT_EQ(mid.per_session[0].adapt_rounds, 0u);

  // Recovery: with the queue empty, release_passes + 2 * step passes
  // unwind all three rungs — full fidelity within one detector window.
  for (int pass = 0; pass < 4; ++pass) server.run_once();
  const auto post = server.stats();
  EXPECT_EQ(post.overload_level, 0);
  EXPECT_EQ(post.overload_level_name, "normal");
  EXPECT_GE(post.overload_transitions, 6u);
  // Normal service resumes end to end.
  server.submit_frame(id, stream[0].cloud);
  server.drain();
  EXPECT_EQ(server.stats().overload_level, 0);
  EXPECT_FALSE(server.poll_results(id).empty());
}

}  // namespace

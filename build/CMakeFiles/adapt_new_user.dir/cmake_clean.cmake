file(REMOVE_RECURSE
  "CMakeFiles/adapt_new_user.dir/examples/adapt_new_user.cpp.o"
  "CMakeFiles/adapt_new_user.dir/examples/adapt_new_user.cpp.o.d"
  "adapt_new_user"
  "adapt_new_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_new_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

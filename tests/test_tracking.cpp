// Tests for the pose tracker: Kalman filter convergence and noise
// rejection, bone-length consistency, and end-to-end jitter reduction on a
// synthetic movement.

#include <gtest/gtest.h>

#include <cmath>

#include "core/tracking.h"
#include "human/kinematics.h"
#include "human/movements.h"
#include "util/rng.h"

namespace {

using fuse::core::PoseTracker;
using fuse::core::ScalarKalman;
using fuse::core::TrackerConfig;
using fuse::human::Joint;
using fuse::human::Pose;

TEST(ScalarKalman, InitialisesOnFirstMeasurement) {
  ScalarKalman f;
  EXPECT_FALSE(f.initialized());
  EXPECT_FLOAT_EQ(f.step(2.5f, 0.1f, 5.0f, 0.05f), 2.5f);
  EXPECT_TRUE(f.initialized());
}

TEST(ScalarKalman, ConvergesToConstantSignal) {
  ScalarKalman f;
  for (int i = 0; i < 50; ++i) f.step(1.0f, 0.1f, 5.0f, 0.05f);
  EXPECT_NEAR(f.position(), 1.0f, 1e-3f);
  EXPECT_NEAR(f.velocity(), 0.0f, 1e-2f);
}

TEST(ScalarKalman, TracksRamp) {
  // Position moving at 1 m/s; the filter should learn the velocity.
  ScalarKalman f;
  for (int i = 0; i < 80; ++i)
    f.step(0.1f * static_cast<float>(i), 0.1f, 5.0f, 0.05f);
  EXPECT_NEAR(f.velocity(), 1.0f, 0.15f);
  EXPECT_NEAR(f.position(), 7.9f, 0.2f);
}

TEST(ScalarKalman, AttenuatesMeasurementNoise) {
  fuse::util::Rng rng(3);
  ScalarKalman f;
  f.reset(0.0f);
  double raw_var = 0.0, filt_var = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const float z = 0.1f * static_cast<float>(rng.gauss());
    const float x = f.step(z, 0.1f, 2.0f, 0.1f);
    raw_var += z * z;
    filt_var += x * x;
  }
  EXPECT_LT(filt_var, 0.5 * raw_var);
}

TEST(PoseTracker, FirstFramePassesThrough) {
  PoseTracker tracker;
  const auto subject = fuse::human::make_subject(0);
  const Pose pose = fuse::human::forward_kinematics(
      fuse::human::standing_state(subject), subject.body);
  const Pose out = tracker.update(pose);
  for (std::size_t j = 0; j < fuse::human::kNumJoints; ++j)
    EXPECT_LT((out.joints[j] - pose.joints[j]).norm(), 1e-4f);
}

TEST(PoseTracker, ReducesJitterOnNoisyMovement) {
  const auto subject = fuse::human::make_subject(1);
  fuse::human::MovementGenerator gen(subject, fuse::human::Movement::kSquat,
                                     fuse::util::Rng(5));
  fuse::util::Rng noise(6);
  PoseTracker tracker;

  double raw_err = 0.0, filt_err = 0.0;
  std::size_t n = 0;
  for (double t = 0.0; t < 8.0; t += 0.1) {
    const Pose truth = gen.pose_at(t);
    Pose noisy = truth;
    for (auto& j : noisy.joints) {
      j.x += 0.05f * static_cast<float>(noise.gauss());
      j.y += 0.05f * static_cast<float>(noise.gauss());
      j.z += 0.05f * static_cast<float>(noise.gauss());
    }
    const Pose filtered = tracker.update(noisy);
    const auto re = noisy.mean_abs_error(truth);
    const auto fe = filtered.mean_abs_error(truth);
    // Skip the warm-up frames where the filter is still initialising.
    if (t > 0.5) {
      raw_err += (re.x + re.y + re.z) / 3.0;
      filt_err += (fe.x + fe.y + fe.z) / 3.0;
      ++n;
    }
  }
  ASSERT_GT(n, 0u);
  EXPECT_LT(filt_err, 0.8 * raw_err)
      << "filtered " << filt_err / n << " vs raw " << raw_err / n;
}

TEST(PoseTracker, BoneLengthsStabilise) {
  const auto subject = fuse::human::make_subject(2);
  fuse::human::MovementGenerator gen(
      subject, fuse::human::Movement::kBothUpperLimbExtension,
      fuse::util::Rng(7));
  fuse::util::Rng noise(8);
  TrackerConfig cfg;
  cfg.enforce_bone_lengths = true;
  PoseTracker tracker(cfg);

  // Feed noisy poses; measure the variance of a limb bone's length with
  // and without the consistency projection.
  auto run = [&](bool enforce) {
    TrackerConfig c;
    c.enforce_bone_lengths = enforce;
    PoseTracker tr(c);
    fuse::util::Rng nz(9);
    std::vector<float> lengths;
    for (double t = 0.0; t < 6.0; t += 0.1) {
      Pose noisy = gen.pose_at(t);
      for (auto& j : noisy.joints) {
        j.x += 0.04f * static_cast<float>(nz.gauss());
        j.z += 0.04f * static_cast<float>(nz.gauss());
      }
      const Pose f = tr.update(noisy);
      lengths.push_back(
          (f[Joint::kElbowLeft] - f[Joint::kShoulderLeft]).norm());
    }
    double mean = 0.0;
    for (const float l : lengths) mean += l;
    mean /= static_cast<double>(lengths.size());
    double var = 0.0;
    for (const float l : lengths) var += (l - mean) * (l - mean);
    return var / static_cast<double>(lengths.size());
  };
  EXPECT_LT(run(true), run(false));
}

TEST(PoseTracker, JointSpeedTracksMotion) {
  const auto subject = fuse::human::make_subject(1);
  fuse::human::MovementGenerator gen(
      subject, fuse::human::Movement::kLeftUpperLimbExtension,
      fuse::util::Rng(10));
  PoseTracker tracker;
  float max_wrist_speed = 0.0f;
  for (double t = 0.0; t < 4.0; t += 0.1) {
    tracker.update(gen.pose_at(t));
    max_wrist_speed =
        std::max(max_wrist_speed, tracker.joint_speed(Joint::kWristLeft));
  }
  // The raised arm's wrist peaks around 1-4 m/s.
  EXPECT_GT(max_wrist_speed, 0.5f);
  EXPECT_LT(max_wrist_speed, 8.0f);
}

TEST(PoseTracker, ResetMatchesFreshTrackerExactly) {
  // After reset() a tracker must be indistinguishable from a brand-new one:
  // Kalman filters, bone-length EMAs and the frame counter all re-init.
  // The serving runtime relies on this when recycling a session for a new
  // subject (serve::Server::recycle_session).
  const auto subject = fuse::human::make_subject(3);
  fuse::human::MovementGenerator gen(subject, fuse::human::Movement::kSquat,
                                     fuse::util::Rng(21));
  PoseTracker recycled;
  // Pollute with one subject's movement...
  for (double t = 0.0; t < 2.0; t += 0.1) recycled.update(gen.pose_at(t));
  EXPECT_GT(recycled.frames_seen(), 0u);
  recycled.reset();
  EXPECT_EQ(recycled.frames_seen(), 0u);

  // ...then both trackers must produce identical outputs on a new stream.
  PoseTracker fresh;
  fuse::human::MovementGenerator gen2(
      subject, fuse::human::Movement::kLeftUpperLimbExtension,
      fuse::util::Rng(22));
  for (double t = 0.0; t < 2.0; t += 0.1) {
    const Pose in = gen2.pose_at(t);
    const Pose a = recycled.update(in);
    const Pose b = fresh.update(in);
    for (std::size_t j = 0; j < fuse::human::kNumJoints; ++j) {
      EXPECT_FLOAT_EQ(a.joints[j].x, b.joints[j].x);
      EXPECT_FLOAT_EQ(a.joints[j].y, b.joints[j].y);
      EXPECT_FLOAT_EQ(a.joints[j].z, b.joints[j].z);
    }
  }
  EXPECT_EQ(recycled.frames_seen(), fresh.frames_seen());
}

TEST(PoseTracker, ResetClearsState) {
  PoseTracker tracker;
  const auto subject = fuse::human::make_subject(0);
  const Pose pose = fuse::human::forward_kinematics(
      fuse::human::standing_state(subject), subject.body);
  tracker.update(pose);
  EXPECT_EQ(tracker.frames_seen(), 1u);
  tracker.reset();
  EXPECT_EQ(tracker.frames_seen(), 0u);
  // After reset the first frame passes through again.
  const Pose out = tracker.update(pose);
  EXPECT_LT((out[Joint::kHead] - pose[Joint::kHead]).norm(), 1e-4f);
}

}  // namespace
